"""Exact distributions of aggregate queries over probabilistic XML.

An aggregate query (``count(//movie)``, ``sum(//price)``) has no single
answer on an uncertain document — it has a *distribution*.  For
structural aggregates (no predicates coupling distinct subtrees) the
distribution is computable exactly by a bottom-up convolution over the
tree, without enumerating worlds:

* a text node contributes a constant;
* an element contributes its own value plus the *convolution* of its
  children's distributions (children are independent given the element
  exists — the same independence decomposition the PR-4 event kernel
  exploits);
* a probability node contributes the *mixture* of its possibilities'
  distributions.

The supported family — all exact, all pinned Fraction-identical to
per-world enumeration by the differential suite:

=========  ===================================================================
kind       per-world value
=========  ===================================================================
``count``  number of matching elements
``sum``    sum of the matching elements' numeric values (0 when none match)
``min``    smallest matching numeric value (``None`` when none match)
``max``    largest matching numeric value (``None`` when none match)
``exists`` 1 when at least one element matches, else 0
=========  ===================================================================

A *match* is an element whose tag equals the target (``*`` matches
every element), optionally filtered by leaf-text equality (the
predicate-filtered variants).  ``sum``/``min``/``max`` read the
element's numeric value — its string value parsed as an exact
:class:`~fractions.Fraction` (integers, ratios like ``7/2``, and
decimal strings like ``2.5`` — never floats) — and support *leaf*
elements only; anything deeper raises :class:`~repro.errors.QueryError`
and is answered by :func:`aggregate_distribution_enumerated`, the
per-world reference that supports every shape.

Aggregates are compiled (:func:`compile_aggregate`) through the same
:class:`~repro.query.plan.QueryPlan` machinery queries use: the target
normalizes to a canonical plan fingerprint, so two spellings of one
aggregate (``"movie"`` vs ``"//movie"``) share a single memo entry and
a single *persistent* identity (:attr:`AggregateSpec.digest` — stable
across processes, the key half :class:`~repro.dbms.cache_store.
AnswerCacheStore` persists aggregate rows under).  Results are memoized
in the document's shared :class:`~repro.pxml.events_cache.
EventProbabilityCache` aggregate side table.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from fractions import Fraction
from functools import lru_cache
from typing import Callable, Optional, Union

from ..errors import QueryError
from ..probability import ONE, ZERO, format_percent
from ..pxml.events import weighted_sum
from ..pxml.events_cache import EventProbabilityCache, cache_for
from ..pxml.model import PXDocument, PXElement, PXText, ProbNode
from ..pxml.worlds import DEFAULT_WORLD_LIMIT, iter_worlds
from ..xmlkit.nodes import XElement
from ..xmlkit.xpath import XPath
from ..xmlkit.xpath.ast import (
    AXIS_DESCENDANT,
    AXIS_SELF,
    BinaryOp,
    Literal,
    NameTest,
    NodeTest,
    Path,
)
from .plan import QueryPlan, _encode_fingerprint, compile_plan

__all__ = [
    "AGGREGATE_KINDS",
    "AggregateDistribution",
    "AggregateSpec",
    "CountDistribution",
    "aggregate_distribution",
    "aggregate_distribution_enumerated",
    "canonical_items",
    "compile_aggregate",
    "count_distribution",
    "count_distribution_enumerated",
    "count_quantile",
    "exists_probability",
    "expected_count",
    "expected_value",
    "format_distribution",
    "max_distribution",
    "min_distribution",
    "sum_distribution",
]

#: A distribution over non-negative integer counts.
CountDistribution = dict[int, Fraction]

#: A distribution over aggregate values: integers (counts, integral
#: sums), exact Fractions (non-integral numeric values), or ``None``
#: (the no-matching-element outcome of ``min``/``max``).
AggregateKey = Optional[Union[int, Fraction]]
AggregateDistribution = dict[AggregateKey, Fraction]

#: The supported aggregate kinds, in canonical order.
AGGREGATE_KINDS = ("count", "sum", "min", "max", "exists")


# -- aggregate compilation -----------------------------------------------------

@dataclass(frozen=True)
class AggregateSpec:
    """A compiled aggregate: kind + target, with persistent identity.

    Build with :func:`compile_aggregate`.  ``fingerprint`` keys the
    in-memory per-document memo (:class:`~repro.pxml.events_cache.
    EventProbabilityCache` aggregate side table); ``digest`` is its
    SHA-256 — stable across processes by the same contract as
    :attr:`~repro.query.plan.QueryPlan.fingerprint_digest`, and the key
    half persisted aggregate rows use (:mod:`repro.dbms.cache_store`).
    """

    kind: str
    tag: str
    text: Optional[str]
    plan: QueryPlan
    fingerprint: tuple
    digest: str

    def describe(self) -> str:
        """Human-readable form, e.g. ``'sum(//price)'`` — stored next to
        persisted rows for diagnostics, never parsed back."""
        target = f"//{self.tag}"
        if self.text is not None:
            target += f"[.={self.text!r}]"
        return f"{self.kind}({target})"

    def count_spec(self) -> "AggregateSpec":
        """The ``count`` aggregate over the same target (``exists``
        derives from it)."""
        return compile_aggregate("count", self.tag, text=self.text)

    def __repr__(self) -> str:
        return f"AggregateSpec({self.describe()!r})"


def _destructure_target(plan: QueryPlan) -> tuple[str, Optional[str]]:
    """(tag, text filter) of a structural aggregate target: ``//tag``,
    optionally with a single ``[. = "literal"]`` predicate."""
    ast = plan.ast
    shown = plan.expression if plan.expression is not None else ast
    if not (
        isinstance(ast, Path)
        and ast.absolute
        and ast.base is None
        and len(ast.steps) == 1
    ):
        raise QueryError(
            f"aggregate target {shown!r} must be a single descendant step"
            " (//tag, optionally with one [. = \"text\"] predicate);"
            " use aggregate_distribution_enumerated for general queries"
        )
    step = ast.steps[0]
    if step.axis != AXIS_DESCENDANT or not isinstance(step.test, NameTest):
        raise QueryError(
            f"aggregate target {shown!r} must name elements on the"
            " descendant axis (//tag)"
        )
    text: Optional[str] = None
    if step.predicates:
        predicate = step.predicates[0] if len(step.predicates) == 1 else None
        if (
            predicate is not None
            and isinstance(predicate, BinaryOp)
            and predicate.op == "="
            and isinstance(predicate.right, Literal)
            and isinstance(predicate.left, Path)
            and not predicate.left.absolute
            and predicate.left.base is None
            and len(predicate.left.steps) == 1
            and predicate.left.steps[0].axis == AXIS_SELF
            and isinstance(predicate.left.steps[0].test, NodeTest)
            and not predicate.left.steps[0].predicates
        ):
            text = predicate.right.value
        else:
            raise QueryError(
                f"aggregate target {shown!r} supports exactly one"
                " [. = \"text\"] predicate; use"
                " aggregate_distribution_enumerated for general predicates"
            )
    return step.test.name, text


@lru_cache(maxsize=4096)
def _compile_aggregate_cached(
    kind: str, target: str, text: Optional[str]
) -> AggregateSpec:
    if kind not in AGGREGATE_KINDS:
        raise QueryError(
            f"unknown aggregate kind {kind!r};"
            f" expected one of {', '.join(AGGREGATE_KINDS)}"
        )
    # Bare names take the same validation path as XPath spellings — a
    # target like "m/x" must raise, never silently match nothing.
    expression = target if target.startswith("/") else f"//{target}"
    tag, target_text = _destructure_target(compile_plan(expression))
    if text is not None and target_text is not None and text != target_text:
        raise QueryError(
            f"conflicting text filters: target carries {target_text!r},"
            f" text= says {text!r}"
        )
    text = target_text if target_text is not None else text
    plan = compile_plan(f"//{tag}")
    fingerprint = ("aggregate", kind, plan.fingerprint, text)
    digest = hashlib.sha256(
        _encode_fingerprint(fingerprint).encode("utf-8")
    ).hexdigest()
    return AggregateSpec(kind, tag, text, plan, fingerprint, digest)


def compile_aggregate(
    kind: str, target: str, *, text: Optional[str] = None
) -> AggregateSpec:
    """Compile an aggregate over a structural target.

    ``target`` is an element name (``"movie"``, ``"*"``) or the
    equivalent XPath spelling (``"//movie"``, ``'//movie[. = "Jaws"]'``)
    — both compile through :func:`~repro.query.plan.compile_plan` to the
    same canonical fingerprint, so they share one cache identity.
    ``text`` adds (or must agree with) the leaf-text equality filter.

    >>> compile_aggregate("count", "movie").digest == \\
    ...     compile_aggregate("count", "//movie").digest
    True
    """
    if not isinstance(target, str) or not target:
        raise QueryError(f"invalid aggregate target {target!r}")
    return _compile_aggregate_cached(kind, target, text)


# -- numeric values ------------------------------------------------------------

def _numeric(text: str, *, what: str) -> Fraction:
    """Exact numeric value of a text realisation: integers, ratios
    (``7/2``) and decimal strings (``2.5``), never floats."""
    try:
        return Fraction(text.strip())
    except (ValueError, ZeroDivisionError):
        raise QueryError(
            f"{what} value {text!r} is not numeric; sum/min/max aggregate"
            " numeric text values only"
        ) from None


def _normalize_key(value: AggregateKey) -> AggregateKey:
    """Canonical key form: integral Fractions become ints (``Fraction(2)``
    and ``2`` are ``==`` and hash-equal, but one canonical type keeps
    cached, persisted and freshly-computed distributions identical)."""
    if isinstance(value, Fraction) and value.denominator == 1:
        return int(value)
    return value


def canonical_items(
    distribution: AggregateDistribution,
) -> list[tuple[AggregateKey, Fraction]]:
    """Canonically ordered, key-normalized ``(value, probability)``
    pairs: the no-match outcome (``None``) first, then ascending.

    The one ordering/normalization rule of the subsystem — the
    in-memory canonical form and the persisted/wire codec
    (:func:`repro.dbms.cache_store.encode_aggregate_distribution`) both
    derive from it, so they cannot drift.
    """
    return sorted(
        (
            (_normalize_key(key), probability)
            for key, probability in distribution.items()
        ),
        key=lambda item: (
            item[0] is not None,
            item[0] if item[0] is not None else 0,
        ),
    )


def _canonical(distribution: AggregateDistribution) -> AggregateDistribution:
    return dict(canonical_items(distribution))


# -- the bottom-up convolution -------------------------------------------------

def _combine(
    a: AggregateDistribution,
    b: AggregateDistribution,
    op: Callable[[AggregateKey, AggregateKey], AggregateKey],
) -> AggregateDistribution:
    # Point-mass factors are the overwhelmingly common case (certain
    # subtrees contribute {k: 1}); mapping the other factor's keys skips
    # the quadratic loop and the Fraction multiplications by one.  The
    # mapped keys still accumulate — min/max are not injective, so two
    # source keys can land on one result key.
    if len(a) == 1:
        (key_a, prob_a), = a.items()
        if prob_a == ONE:
            result: AggregateDistribution = {}
            for key_b, prob_b in b.items():
                key = op(key_a, key_b)
                result[key] = result.get(key, ZERO) + prob_b
            return result
    if len(b) == 1:
        (key_b, prob_b), = b.items()
        if prob_b == ONE:
            result = {}
            for key_a, prob_a in a.items():
                key = op(key_a, key_b)
                result[key] = result.get(key, ZERO) + prob_a
            return result
    # General case: batch the per-key accumulation.  Each result key
    # gathers its (prob_a, prob_b) term pairs and is summed in one
    # integer-accumulating pass (one Fraction normalization per key
    # instead of one per term — see
    # :func:`repro.pxml.events.weighted_sum`).
    terms: dict[AggregateKey, tuple[list[Fraction], list[Fraction]]] = {}
    for key_a, prob_a in a.items():
        for key_b, prob_b in b.items():
            key = op(key_a, key_b)
            entry = terms.get(key)
            if entry is None:
                entry = ([], [])
                terms[key] = entry
            entry[0].append(prob_a)
            entry[1].append(prob_b)
    return {
        key: weighted_sum(weights, values)
        for key, (weights, values) in terms.items()
    }


def _mixture(
    parts: list[tuple[Fraction, AggregateDistribution]]
) -> AggregateDistribution:
    # Mixture weights share the choice node's small common denominator;
    # accumulating each key's Σ weight·prob as integers over a running
    # lcm (weighted_sum) skips the per-term Fraction normalizations.
    terms: dict[AggregateKey, tuple[list[Fraction], list[Fraction]]] = {}
    for weight, distribution in parts:
        for key, prob in distribution.items():
            entry = terms.get(key)
            if entry is None:
                entry = ([], [])
                terms[key] = entry
            entry[0].append(weight)
            entry[1].append(prob)
    return {
        key: weighted_sum(weights, probs)
        for key, (weights, probs) in terms.items()
    }


def _add(a: AggregateKey, b: AggregateKey) -> AggregateKey:
    return _normalize_key(a + b)


def _opt_min(a: AggregateKey, b: AggregateKey) -> AggregateKey:
    if a is None:
        return b
    if b is None:
        return a
    return a if a <= b else b


def _opt_max(a: AggregateKey, b: AggregateKey) -> AggregateKey:
    if a is None:
        return b
    if b is None:
        return a
    return a if a >= b else b


#: kind -> (combine op, identity key).  ``exists`` derives from ``count``.
_MONOIDS: dict[str, tuple[Callable, AggregateKey]] = {
    "count": (_add, 0),
    "sum": (_add, 0),
    "min": (_opt_min, None),
    "max": (_opt_max, None),
}


class _StructuralAggregator:
    """Bottom-up convolution over the fragment with exact tree
    semantics: elements matched by (tag, optional leaf-text equality),
    children independent given the parent, possibilities mixed."""

    def __init__(self, spec: AggregateSpec):
        self.spec = spec
        self.op, self.identity = _MONOIDS[spec.kind]

    # -- per-element contribution -------------------------------------------

    def _own(self, element: PXElement) -> AggregateDistribution:
        spec = self.spec
        if spec.tag != "*" and element.tag != spec.tag:
            return {self.identity: ONE}
        if spec.text is not None:
            # Predicate-filtered: the hit mass carries the aggregate
            # contribution, the miss mass the identity.
            hit, miss = self._text_split(element)
            distribution: AggregateDistribution = {}
            if miss > 0:
                distribution[self.identity] = miss
            if hit > 0:
                key = 1 if spec.kind == "count" else _normalize_key(
                    _numeric(spec.text, what=f"<{element.tag}> filter")
                )
                distribution[key] = distribution.get(key, ZERO) + hit
            return distribution
        if spec.kind == "count":
            return {1: ONE}
        # Unfiltered sum/min/max: the element's numeric value distribution.
        return self._value_distribution(element)

    def _leaf_choices(self, element: PXElement) -> list[tuple[str, Fraction]]:
        """(string value, probability) realisations of a *leaf* element —
        no children, or one probability child whose possibilities hold
        text only.  Deeper shapes have no compact value distribution here
        and raise :class:`QueryError` (use the enumerated reference)."""
        if not element.children:
            return [("", ONE)]
        if len(element.children) != 1:
            raise QueryError(
                f"aggregate over <{element.tag}> supports single-choice"
                " leaves only; use aggregate_distribution_enumerated for"
                " general shapes"
            )
        choices: list[tuple[str, Fraction]] = []
        for possibility in element.children[0].possibilities:
            if any(isinstance(c, PXElement) for c in possibility.children):
                raise QueryError(
                    f"aggregate over <{element.tag}> supports leaf elements"
                    " only; use aggregate_distribution_enumerated for"
                    " general shapes"
                )
            value = "".join(
                child.value
                for child in possibility.children
                if isinstance(child, PXText)
            ).strip()
            choices.append((value, possibility.prob))
        return choices

    def _text_split(self, element: PXElement) -> tuple[Fraction, Fraction]:
        """(P(value == text filter), P(it does not)) for a leaf element."""
        hit = ZERO
        miss = ZERO
        for value, prob in self._leaf_choices(element):
            if value == self.spec.text:
                hit += prob
            else:
                miss += prob
        return hit, miss

    def _value_distribution(self, element: PXElement) -> AggregateDistribution:
        distribution: AggregateDistribution = {}
        for value, prob in self._leaf_choices(element):
            key = _normalize_key(_numeric(value, what=f"<{element.tag}>"))
            distribution[key] = distribution.get(key, ZERO) + prob
        return distribution

    # -- traversal ----------------------------------------------------------

    def aggregate_element(self, element: PXElement) -> AggregateDistribution:
        total = self._own(element)
        for prob_child in element.children:
            total = _combine(total, self.aggregate_prob(prob_child), self.op)
        return total

    def aggregate_prob(self, node: ProbNode) -> AggregateDistribution:
        parts = []
        for possibility in node.possibilities:
            branch: AggregateDistribution = {self.identity: ONE}
            for child in possibility.children:
                if isinstance(child, PXElement):
                    branch = _combine(
                        branch, self.aggregate_element(child), self.op
                    )
            parts.append((possibility.prob, branch))
        return _mixture(parts)


# -- public entry points -------------------------------------------------------

# The "exists" kind re-aggregates as a count and thresholds the result;
# the inner call is always a non-"exists" kind, so the self-call cannot
# nest beyond depth 1 (document size never drives it).
# impreciselint: disable=no-recursion -- bounded depth-1 self-call
def aggregate_distribution(
    document: PXDocument,
    kind: Union[str, AggregateSpec],
    target: Optional[str] = None,
    *,
    text: Optional[str] = None,
    cache: Optional[EventProbabilityCache] = None,
    use_cache: bool = True,
) -> AggregateDistribution:
    """Exact distribution of an aggregate over ``document``.

    Pass ``(kind, target)`` strings (see :func:`compile_aggregate`) or a
    pre-compiled :class:`AggregateSpec` as ``kind``.  Results are
    memoized under the spec's fingerprint in the document's shared
    :class:`~repro.pxml.events_cache.EventProbabilityCache` (same table,
    same invalidation rules as query answers), so repeated aggregates —
    dashboards polling the same counts — cost one convolution per
    document lifetime.  The returned mapping is always a private copy:
    mutating it never corrupts the cache.

    >>> from repro.pxml import certain_document
    >>> from repro.xmlkit import parse_document
    >>> doc = certain_document(parse_document("<r><p>3</p><p>4</p></r>"))
    >>> aggregate_distribution(doc, "sum", "p")
    {7: Fraction(1, 1)}
    """
    if isinstance(kind, AggregateSpec):
        if target is not None or text is not None:
            raise QueryError(
                "pass either a compiled AggregateSpec or (kind, target,"
                " text=), not both"
            )
        spec = kind
    else:
        if target is None:
            raise QueryError("aggregate_distribution needs a target")
        spec = compile_aggregate(kind, target, text=text)
    if cache is None and use_cache:
        cache = cache_for(document)
    if cache is not None:
        cached = cache.aggregate(document, spec.fingerprint)
        if cached is not None:
            return dict(cached)
    if spec.kind == "exists":
        counts = aggregate_distribution(
            document, spec.count_spec(), cache=cache, use_cache=use_cache
        )
        zero_mass = counts.get(0, ZERO)
        distribution: AggregateDistribution = {}
        if zero_mass > 0:
            distribution[0] = zero_mass
        if zero_mass < ONE:
            distribution[1] = ONE - zero_mass
    else:
        aggregator = _StructuralAggregator(spec)
        distribution = _canonical(aggregator.aggregate_prob(document.root))
    if cache is not None:
        # Store a private copy and return the freshly-built mapping:
        # exactly one copy per call, and the caller can never alias (and
        # so never mutate) the cached entry.
        cache.store_aggregate(document, spec.fingerprint, dict(distribution))
    return distribution


def count_distribution(
    document: PXDocument,
    tag: str,
    *,
    text: Optional[str] = None,
    cache: Optional[EventProbabilityCache] = None,
    use_cache: bool = True,
) -> CountDistribution:
    """Exact distribution of ``count(//tag)`` (optionally of elements
    whose text equals ``text``), computed by tree convolution.

    >>> from repro.pxml import certain_document
    >>> from repro.xmlkit import parse_document
    >>> doc = certain_document(parse_document("<r><m/><m/></r>"))
    >>> count_distribution(doc, "m")
    {2: Fraction(1, 1)}
    """
    return aggregate_distribution(
        document, "count", tag, text=text, cache=cache, use_cache=use_cache
    )


def sum_distribution(
    document: PXDocument,
    target: str,
    *,
    text: Optional[str] = None,
    cache: Optional[EventProbabilityCache] = None,
    use_cache: bool = True,
) -> AggregateDistribution:
    """Exact distribution of the sum of matching numeric values (0 when
    nothing matches)."""
    return aggregate_distribution(
        document, "sum", target, text=text, cache=cache, use_cache=use_cache
    )


def min_distribution(
    document: PXDocument,
    target: str,
    *,
    text: Optional[str] = None,
    cache: Optional[EventProbabilityCache] = None,
    use_cache: bool = True,
) -> AggregateDistribution:
    """Exact distribution of the smallest matching numeric value
    (``None`` carries the no-match probability)."""
    return aggregate_distribution(
        document, "min", target, text=text, cache=cache, use_cache=use_cache
    )


def max_distribution(
    document: PXDocument,
    target: str,
    *,
    text: Optional[str] = None,
    cache: Optional[EventProbabilityCache] = None,
    use_cache: bool = True,
) -> AggregateDistribution:
    """Exact distribution of the largest matching numeric value
    (``None`` carries the no-match probability)."""
    return aggregate_distribution(
        document, "max", target, text=text, cache=cache, use_cache=use_cache
    )


def exists_probability(
    document: PXDocument,
    target: str,
    *,
    text: Optional[str] = None,
    cache: Optional[EventProbabilityCache] = None,
    use_cache: bool = True,
) -> Fraction:
    """P(at least one element matches) — derived from (and sharing the
    memo of) the count distribution."""
    distribution = aggregate_distribution(
        document, "exists", target, text=text, cache=cache, use_cache=use_cache
    )
    return distribution.get(1, ZERO)


# -- the per-world reference ---------------------------------------------------

def aggregate_distribution_enumerated(
    document: PXDocument,
    kind: str,
    target: str,
    *,
    text: Optional[str] = None,
    limit: Optional[int] = DEFAULT_WORLD_LIMIT,
) -> AggregateDistribution:
    """Aggregate distribution by per-world evaluation — the reference
    semantics the differential suite pins every pushdown against.

    Supports every document shape (no leaf restriction); the pushdown
    must agree Fraction-for-Fraction wherever it applies.
    """
    spec = compile_aggregate(kind, target, text=text)
    xpath = XPath(f"//{spec.tag}")
    distribution: AggregateDistribution = {}
    for world in iter_worlds(document, limit=limit):
        result = xpath.evaluate(world.document)
        if not isinstance(result, list):
            raise QueryError("aggregate queries must select nodes")
        values = [
            node.text().strip()
            for node in result
            if isinstance(node, XElement)
        ]
        if spec.text is not None:
            values = [value for value in values if value == spec.text]
        if spec.kind == "count":
            key: AggregateKey = len(values)
        elif spec.kind == "exists":
            key = 1 if values else 0
        else:
            numbers = [
                _numeric(value, what=f"<{spec.tag}>") for value in values
            ]
            if spec.kind == "sum":
                key = _normalize_key(sum(numbers, ZERO))
            elif not numbers:
                key = None
            elif spec.kind == "min":
                key = _normalize_key(min(numbers))
            else:
                key = _normalize_key(max(numbers))
        distribution[key] = distribution.get(key, ZERO) + world.probability
    return _canonical(distribution)


def count_distribution_enumerated(
    document: PXDocument,
    expression: str,
    *,
    limit: Optional[int] = DEFAULT_WORLD_LIMIT,
) -> CountDistribution:
    """Distribution of ``count(<expression>)`` by per-world evaluation —
    the reference semantics, supporting arbitrary XPath."""
    xpath = XPath(expression)
    distribution: CountDistribution = {}
    for world in iter_worlds(document, limit=limit):
        result = xpath.evaluate(world.document)
        if not isinstance(result, list):
            raise QueryError("count queries must select nodes")
        key = len(result)
        distribution[key] = distribution.get(key, ZERO) + world.probability
    return dict(sorted(distribution.items()))


# -- moments and display -------------------------------------------------------

def expected_value(distribution: AggregateDistribution) -> Fraction:
    """Mean of an aggregate distribution.  Undefined (raises
    :class:`QueryError`) when the no-match outcome (``None``) carries
    probability — there is no value to average in those worlds."""
    total = ZERO
    for key, prob in distribution.items():
        if key is None:
            raise QueryError(
                "expected_value is undefined when no element matches with"
                f" probability {prob}"
            )
        total += Fraction(key) * prob
    return total


def expected_count(distribution: CountDistribution) -> Fraction:
    """Mean of a count distribution."""
    return expected_value(distribution)


def count_quantile(distribution: CountDistribution, quantile: Fraction) -> int:
    """Smallest count c with P(count ≤ c) ≥ quantile."""
    if not ZERO <= quantile <= ONE:
        raise QueryError(f"quantile {quantile} outside [0, 1]")
    cumulative = ZERO
    last = 0
    for count in sorted(distribution):
        cumulative += distribution[count]
        last = count
        if cumulative >= quantile:
            return count
    return last


def format_distribution(distribution: AggregateDistribution) -> str:
    """Render an aggregate distribution, one ``value  percent (exact)``
    line per outcome — the display ``imprecise query --aggregate`` and
    the serve protocol share."""
    lines = []
    for key, prob in distribution.items():
        shown = "(no match)" if key is None else str(key)
        lines.append(f"{format_percent(prob):>4s} {shown}  ({prob})")
    return "\n".join(lines)
