"""Answer-quality measures for probabilistic query results.

The demo "measure[s] answer quality with adapted precision and recall
measures" (§VII, citing de Keijzer & van Keulen, *Quality measures in
uncertain data management*, SUM 2007).  The adaptation: answers are not
sets but probability-weighted collections, so precision weighs each
returned value by its probability, and recall credits each expected value
with the probability it was returned.

For answer ``A = {(v, p_v)}`` and expected (ground-truth) set ``T``::

    precision = Σ_{v ∈ A∩T} p_v / Σ_{v ∈ A} p_v
    recall    = Σ_{v ∈ T} p_v / |T|          (p_v = 0 when v ∉ A)
    f1        = harmonic mean of the two

A *certain*, correct and complete answer scores 1/1/1; hedging on wrong
values lowers precision smoothly instead of abruptly; failing to return an
expected value at any probability lowers recall.  :func:`precision_recall_at`
additionally evaluates the classical crisp measures after thresholding,
which is how "good is good enough" can be quantified against a cut-off.
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction
from typing import Iterable

from ..probability import ZERO
from .ranking import RankedAnswer


@dataclass(frozen=True)
class AnswerQuality:
    """Probability-weighted precision/recall/F1 of one answer."""

    precision: Fraction
    recall: Fraction

    @property
    def f1(self) -> Fraction:
        if self.precision + self.recall == 0:
            return ZERO
        return 2 * self.precision * self.recall / (self.precision + self.recall)

    def summary(self) -> str:
        return (
            f"precision={float(self.precision):.3f}"
            f" recall={float(self.recall):.3f}"
            f" f1={float(self.f1):.3f}"
        )


def answer_quality(answer: RankedAnswer, expected: Iterable[str]) -> AnswerQuality:
    """Probability-weighted precision and recall against a ground truth.

    >>> from repro.query.ranking import RankedAnswer, RankedItem
    >>> from fractions import Fraction
    >>> answer = RankedAnswer([RankedItem("Jaws", Fraction(97, 100))])
    >>> quality = answer_quality(answer, {"Jaws", "Jaws 2"})
    >>> float(quality.precision), float(quality.recall)
    (1.0, 0.485)
    """
    truth = set(expected)
    if not truth and not answer.items:
        return AnswerQuality(Fraction(1), Fraction(1))
    returned_mass = sum((item.probability for item in answer.items), ZERO)
    correct_mass = sum(
        (item.probability for item in answer.items if item.value in truth), ZERO
    )
    precision = correct_mass / returned_mass if returned_mass else Fraction(1)
    recall = correct_mass / len(truth) if truth else Fraction(1)
    return AnswerQuality(precision, recall)


def precision_recall_at(
    answer: RankedAnswer, expected: Iterable[str], threshold: float | Fraction
) -> AnswerQuality:
    """Crisp precision/recall after keeping only values with probability ≥
    ``threshold`` (each kept value counts fully)."""
    truth = set(expected)
    kept = {item.value for item in answer.above(threshold)}
    if not kept:
        precision = Fraction(1) if not truth else ZERO
    else:
        precision = Fraction(len(kept & truth), len(kept))
    recall = Fraction(len(kept & truth), len(truth)) if truth else Fraction(1)
    return AnswerQuality(precision, recall)
