"""Amalgamated ranked answers.

A probabilistic query returns, for each distinct answer *value*, the exact
probability that the value occurs in the answer of a randomly drawn world.
The paper displays these as percentage-ranked lists::

    100% Die Hard: With a Vengeance
     96% Mission: Impossible II
     21% Mission: Impossible
"""

from __future__ import annotations

from dataclasses import dataclass, field
from fractions import Fraction
from typing import Callable, Iterable, Iterator, Mapping, Optional, Sequence

from ..probability import ProbLike, as_probability, format_percent


@dataclass(frozen=True)
class RankedItem:
    """One answer value with its probability of appearing in the answer."""

    value: str
    probability: Fraction
    occurrences: int = 1  # distinct tree occurrences contributing the value

    def __str__(self) -> str:
        return f"{format_percent(self.probability):>4} {self.value}"


@dataclass
class RankedAnswer:
    """All answer values, most probable first (ties broken by value)."""

    items: list[RankedItem] = field(default_factory=list)

    def __post_init__(self):
        self.items.sort(key=lambda item: (-item.probability, item.value))

    def __iter__(self) -> Iterator[RankedItem]:
        return iter(self.items)

    def __len__(self) -> int:
        return len(self.items)

    def values(self) -> list[str]:
        return [item.value for item in self.items]

    def probability_of(self, value: str) -> Fraction:
        for item in self.items:
            if item.value == value:
                return item.probability
        return Fraction(0)

    def top(self, count: int) -> list[RankedItem]:
        return self.items[:count]

    def above(self, threshold: ProbLike) -> list[RankedItem]:
        """Items with probability ≥ threshold (crisp answer extraction).

        The threshold is coerced through
        :func:`repro.probability.as_probability`, so a float ``0.3``
        means the decimal 3/10 — the reading the rest of the library
        gives float probabilities — never the binary float it parses to.
        """
        limit = as_probability(threshold)
        return [item for item in self.items if item.probability >= limit]

    def as_table(self) -> str:
        """The paper's display format (§VI)."""
        if not self.items:
            return "(empty answer)"
        return "\n".join(str(item) for item in self.items)


def ranked_from_probabilities(
    contributions: Mapping[str, tuple[object, int]],
    probabilities: Sequence[Fraction],
) -> RankedAnswer:
    """Build a ranked answer from an answer-event map and its already
    computed probabilities (aligned with the map's iteration order).

    The single place where answer items are materialized — the
    zero-probability drop (a value priced at 0 occurs in no world and is
    not an answer) lives here so single-query and batch paths cannot
    diverge."""
    items = [
        RankedItem(value, probability, contributions[value][1])
        for value, probability in zip(contributions, probabilities)
        if probability > 0
    ]
    return RankedAnswer(items)


def ranked_from_events(
    contributions: Mapping[str, tuple[object, int]],
    probabilities_of: Callable[[Sequence[object]], Sequence[Fraction]],
) -> RankedAnswer:
    """Build a ranked answer from an answer-event map.

    ``contributions`` maps each answer value to ``(event, occurrences)``
    (the shape of ``ProbQueryEngine.answer_events``); ``probabilities_of``
    prices all events in one bulk call — engines pass their document's
    shared :class:`~repro.pxml.events_cache.EventProbabilityCache` here so
    ranking rides the same digest-keyed memo as every other consumer of
    the hash-consed event algebra."""
    events = [event for event, _ in contributions.values()]
    return ranked_from_probabilities(contributions, probabilities_of(events))


def merge_ranked(items: Iterable[RankedItem]) -> RankedAnswer:
    """Merge items sharing a value by summing probabilities (used by the
    enumeration backend, where each world contributes its own items)."""
    merged: dict[str, tuple[Fraction, int]] = {}
    for item in items:
        probability, occurrences = merged.get(item.value, (Fraction(0), 0))
        merged[item.value] = (
            probability + item.probability,
            occurrences + item.occurrences,
        )
    return RankedAnswer(
        [
            RankedItem(value, probability, occurrences)
            for value, (probability, occurrences) in merged.items()
        ]
    )
