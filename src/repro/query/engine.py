"""Query evaluation over probabilistic XML.

The engine executes compiled plans (:mod:`repro.query.plan`) against the
probabilistic tree: every navigation through a probability node conjoins
the corresponding choice literal, so each visited node carries the *event*
of its existence.  Predicates compile to events too; the probability that
a value belongs to the answer is then the exact probability of an
OR-of-occurrences event (:func:`repro.pxml.events.event_probability`).
Events are hash-consed (:mod:`repro.pxml.events`): the conjunctions this
traversal builds at every step intern to canonical instances, so the
events of overlapping paths share structure, carry precomputed
variable/occurrence metadata, and hit the probability memo by digest.

Supported probabilistically (a superset of both §VI paper queries):
child/descendant/self/parent/attribute axes, name/text()/node() tests,
``and or not()``, comparisons against literals and between paths
(=, !=, <, <=, >, >=; numeric when both sides look numeric),
``contains/starts-with/ends-with``, ``some/every $v in … satisfies …``,
``true()/false()``.  Value comparisons treat an element's value as the set
of its descendant text realisations — exact for leaf-structured data (see
DESIGN.md).  Positional predicates and arithmetic inside predicates have
no possible-worlds compilation here and raise :class:`QueryError` — at
*compile* time, before any document is touched.

Two layers of amortization (both per document, both exact):

* queries compile once into a :class:`~repro.query.plan.QueryPlan`; the
  per-document answer-event map is cached under the plan's structural
  fingerprint, so re-running a query skips the tree walk entirely;
* every event probability goes through the document's shared
  :class:`~repro.pxml.events_cache.EventProbabilityCache`, so sub-events
  common across queries (and across engines over the same document) are
  expanded once and resolve by interned digest afterwards.  Cache misses
  are priced **top-down**: the answer event is compiled into a
  component-factored plan (:mod:`repro.pxml.events_compile`) whose
  products/coproducts mirror the independence structure the traversal
  built — axis steps over disjoint subtrees never enter the same
  Shannon expansion — and literal/small-conjunction rows resolve
  through the cross-document
  :class:`~repro.pxml.events_compile.LiteralProbabilityTable`, so
  fan-out pricing of one plan across a dataspace reuses rows between
  documents.

Construct with ``use_cache=False`` for the uncached reference behaviour
(``cache=None`` is the default and means "use the document's shared
cache") — the uncached path is the pure bottom-up kernel, benchmarks
compare the two, and the test suite asserts they are Fraction-equal.

``query_enumeration`` provides the literal per-world semantics as the
reference implementation (exponential; guarded by a world limit).
"""

from __future__ import annotations

from fractions import Fraction
from typing import Iterable, Iterator, Optional, Sequence, Union

from ..deadline import checkpoint
from ..errors import QueryError
from ..pxml.events import (
    Event,
    FALSE_EVENT,
    TRUE_EVENT,
    all_of,
    any_of,
    event_probability,
    lit,
    negate,
)
from ..pxml.events_cache import EventProbabilityCache, cache_for
from ..pxml.events_compile import CompiledEvent, compile_event
from ..pxml.model import PXDocument, PXElement, PXText
from ..pxml.worlds import DEFAULT_WORLD_LIMIT, iter_worlds
from ..xmlkit.nodes import XDocument, XElement, XText
from ..xmlkit.xpath import XPath
from ..xmlkit.xpath.ast import (
    AXIS_ATTRIBUTE,
    AXIS_CHILD,
    AXIS_DESCENDANT,
    AXIS_PARENT,
    AXIS_SELF,
    BinaryOp,
    FunctionCall,
    Literal,
    Negate,
    Number,
    Path,
    Quantified,
    Step,
    Union as UnionExpr,
    VarRef,
    XPathNode,
)
from .plan import PAttr, QueryPlan, compile_plan
from .ranking import (
    RankedAnswer,
    RankedItem,
    merge_ranked,
    ranked_from_events,
    ranked_from_probabilities,
)

_DOC = object()  # sentinel for the virtual document node

#: Accepted query forms: source text, parsed AST, or compiled plan.
QueryLike = Union[str, XPathNode, QueryPlan]


class PContext:
    """A visited node together with its existence event and parent link."""

    __slots__ = ("node", "event", "parent")

    def __init__(self, node: object, event: Event, parent: Optional["PContext"]):
        self.node = node  # _DOC | PXElement | PXText | PAttr
        self.event = event
        self.parent = parent

    def child_contexts(self) -> Iterator["PContext"]:
        node = self.node
        if node is _DOC:
            raise QueryError("document context children are engine-internal")
        if not isinstance(node, PXElement):
            return
        for prob_child in node.children:
            for index, possibility in enumerate(prob_child.possibilities):
                child_event = all_of([self.event, lit(prob_child, index)])
                if child_event is FALSE_EVENT:
                    continue
                for child in possibility.children:
                    yield PContext(child, child_event, self)


class ProbQueryEngine:
    """Compiled-plan query evaluation over one probabilistic document.

    By default the engine shares the document's event-probability cache
    (:func:`repro.pxml.events_cache.cache_for`); pass ``use_cache=False``
    for fully uncached evaluation, or ``cache=`` to share an explicit
    cache instance.

    >>> from repro.xmlkit import parse_document
    >>> from repro.pxml import certain_document
    >>> doc = certain_document(parse_document("<r><m><t>Jaws</t></m></r>"))
    >>> ProbQueryEngine(doc).query("//m/t").values()
    ['Jaws']
    """

    def __init__(
        self,
        document: PXDocument,
        *,
        cache: Optional[EventProbabilityCache] = None,
        use_cache: bool = True,
    ):
        self.document = document
        self.cache: Optional[EventProbabilityCache]
        if cache is not None:
            self.cache = cache
        elif use_cache:
            self.cache = cache_for(document)
        else:
            self.cache = None
        self._root_context = PContext(_DOC, TRUE_EVENT, None)
        self._plans: dict[str, QueryPlan] = {}

    # -- public API ---------------------------------------------------------

    def compile(self, expression: QueryLike) -> QueryPlan:
        """Compile (and memoize, for strings) a query into a reusable plan."""
        if isinstance(expression, QueryPlan):
            return expression
        if isinstance(expression, str):
            plan = self._plans.get(expression)
            if plan is None:
                plan = compile_plan(expression)
                self._plans[expression] = plan
            return plan
        return compile_plan(expression)

    def query(self, expression: QueryLike) -> RankedAnswer:
        """Evaluate a node-selecting XPath; returns the amalgamated ranked
        answer over the value realisations of the selected nodes."""
        contributions = self.answer_events(expression)
        return ranked_from_events(contributions, self._probabilities)

    def answer_events(self, expression: QueryLike) -> dict[str, tuple[Event, int]]:
        """For each distinct answer value: (event that it appears, number
        of contributing occurrences).  The building block for querying,
        feedback conditioning, and quality measures.

        The result is cached per document under the plan's fingerprint;
        treat it as shared and read-only.
        """
        plan = self.compile(expression)
        checkpoint()
        if self.cache is not None:
            cached = self.cache.answer_events(self.document, plan.fingerprint)
            if cached is not None:
                return cached
        events = self._compute_answer_events(plan)
        if self.cache is not None:
            self.cache.store_answer_events(self.document, plan.fingerprint, events)
        return events

    def compiled_answer_events(
        self, expression: QueryLike
    ) -> dict[str, tuple[CompiledEvent, int]]:
        """The answer events of ``expression``, compiled into
        component-factored pricing plans
        (:func:`repro.pxml.events_compile.compile_event`) — the shape
        the cache prices misses through.  Exposed so tests and tools can
        inspect the factoring the engine's traversal produced (e.g. the
        variable-disjointness invariant of every product/coproduct)."""
        return {
            value: (compile_event(event), count)
            for value, (event, count) in self.answer_events(expression).items()
        }

    def answer_probability(self, expression: QueryLike, value: str) -> Fraction:
        """P(value ∈ answer)."""
        events = self.answer_events(expression)
        if value not in events:
            return Fraction(0)
        return self._probability(events[value][0])

    def exists_probability(self, expression: QueryLike) -> Fraction:
        """P(the query selects at least one node)."""
        plan = self.compile(expression)
        results = self._eval_nodeset(plan, plan.ast, self._root_context, {})
        return self._probability(any_of(ctx.event for ctx in results))

    # -- cache plumbing -----------------------------------------------------

    def _probability(self, event: Event) -> Fraction:
        if self.cache is not None:
            return self.cache.probability(event)
        return event_probability(event)

    def probabilities(self, events: Sequence[Event]) -> list[Fraction]:
        """Bulk exact probabilities, aligned with ``events`` — one pass
        through the shared cache (smallest-event-first factoring) when
        caching is enabled.  The public entry point for consumers that
        price many events of one document (ranking, approximate top-k)."""
        if self.cache is not None:
            return self.cache.probabilities_of(events)
        return [event_probability(event) for event in events]

    # Backwards-compatible internal alias.
    _probabilities = probabilities

    def _compute_answer_events(
        self, plan: QueryPlan
    ) -> dict[str, tuple[Event, int]]:
        results = self._eval_nodeset(plan, plan.ast, self._root_context, {})
        contributions: dict[str, list[Event]] = {}
        counts: dict[str, int] = {}
        for context in results:
            checkpoint()
            for value, event in self._value_alternatives(context):
                if not value:
                    continue
                contributions.setdefault(value, []).append(event)
                counts[value] = counts.get(value, 0) + 1
        return {
            value: (any_of(events), counts[value])
            for value, events in contributions.items()
        }

    # -- navigation -----------------------------------------------------------

    def _document_children(self) -> Iterator[PContext]:
        root_prob = self.document.root
        for index, possibility in enumerate(root_prob.possibilities):
            event = lit(root_prob, index)
            for child in possibility.children:
                yield PContext(child, event, self._root_context)

    def _axis(self, context: PContext, axis: str) -> Iterator[PContext]:
        if axis == AXIS_SELF:
            yield context
            return
        if axis == AXIS_CHILD:
            if context.node is _DOC:
                yield from self._document_children()
            else:
                yield from context.child_contexts()
            return
        if axis == AXIS_DESCENDANT:
            children = (
                self._document_children()
                if context.node is _DOC
                else context.child_contexts()
            )
            for child in children:
                yield child
                yield from self._axis(child, AXIS_DESCENDANT)
            return
        if axis == AXIS_PARENT:
            if context.parent is not None:
                yield context.parent
            return
        if axis == AXIS_ATTRIBUTE:
            node = context.node
            if isinstance(node, PXElement):
                for name in sorted(node.attributes):
                    yield PContext(
                        PAttr(node, name, node.attributes[name]),
                        context.event,
                        context,
                    )
            return
        raise QueryError(f"unsupported axis {axis!r} over probabilistic XML")

    # -- path evaluation --------------------------------------------------------

    def _eval_nodeset(
        self,
        plan: QueryPlan,
        ast: XPathNode,
        context: PContext,
        variables: dict[str, PContext],
    ) -> list[PContext]:
        if isinstance(ast, Path):
            if ast.base is not None:
                starts = self._eval_nodeset(plan, ast.base, context, variables)
            elif ast.absolute:
                starts = [self._root_context]
            else:
                starts = [context]
            current = starts
            for step in ast.steps:
                current = self._eval_step(plan, step, current, variables)
            return self._dedupe(current)
        if isinstance(ast, UnionExpr):
            left = self._eval_nodeset(plan, ast.left, context, variables)
            right = self._eval_nodeset(plan, ast.right, context, variables)
            return self._dedupe(left + right)
        if isinstance(ast, VarRef):
            if ast.name not in variables:
                raise QueryError(f"unbound variable ${ast.name}")
            return [variables[ast.name]]
        raise QueryError(
            f"expression does not select nodes: {type(ast).__name__}"
        )

    @staticmethod
    def _dedupe(contexts: list[PContext]) -> list[PContext]:
        # The same tree node can be reached along the same path only once,
        # but unions/descendant overlaps may duplicate; merge by node
        # identity, OR-ing events.
        merged: dict[int, PContext] = {}
        order: list[int] = []
        for context in contexts:
            key = id(context.node)
            if key in merged:
                existing = merged[key]
                merged[key] = PContext(
                    existing.node,
                    any_of([existing.event, context.event]),
                    existing.parent,
                )
            else:
                merged[key] = context
                order.append(key)
        return [merged[key] for key in order]

    def _eval_step(
        self,
        plan: QueryPlan,
        step: Step,
        contexts: list[PContext],
        variables: dict[str, PContext],
    ) -> list[PContext]:
        step_plan = plan.step(step)
        matches = step_plan.matches
        results: list[PContext] = []
        for context in contexts:
            checkpoint()
            for candidate in self._axis(context, step_plan.axis):
                if not matches(candidate.node):
                    continue
                event = candidate.event
                failed = False
                for predicate in step_plan.predicates:
                    predicate_event = self._predicate_event(
                        plan, predicate, candidate, variables
                    )
                    event = all_of([event, predicate_event])
                    if event is FALSE_EVENT:
                        failed = True
                        break
                if not failed:
                    results.append(
                        PContext(candidate.node, event, candidate.parent)
                    )
        return results

    # -- predicates → events ------------------------------------------------------

    def _predicate_event(
        self,
        plan: QueryPlan,
        ast: XPathNode,
        context: PContext,
        variables: dict[str, PContext],
    ) -> Event:
        if isinstance(ast, (Path, UnionExpr, VarRef)):
            # Existence test.
            nodes = self._eval_nodeset(plan, ast, context, variables)
            return any_of(node.event for node in nodes)
        if isinstance(ast, Literal):
            return TRUE_EVENT if ast.value else FALSE_EVENT
        if isinstance(ast, Number):
            raise QueryError(
                "positional predicates have no possible-worlds semantics here"
            )
        if isinstance(ast, Negate):
            raise QueryError("arithmetic is not supported in probabilistic queries")
        if isinstance(ast, BinaryOp):
            if ast.op == "and":
                return all_of(
                    [
                        self._predicate_event(plan, ast.left, context, variables),
                        self._predicate_event(plan, ast.right, context, variables),
                    ]
                )
            if ast.op == "or":
                return any_of(
                    [
                        self._predicate_event(plan, ast.left, context, variables),
                        self._predicate_event(plan, ast.right, context, variables),
                    ]
                )
            if ast.op in ("=", "!=", "<", "<=", ">", ">="):
                return self._comparison_event(plan, ast, context, variables)
            raise QueryError(
                f"operator {ast.op!r} is not supported in probabilistic queries"
            )
        if isinstance(ast, FunctionCall):
            return self._function_event(plan, ast, context, variables)
        if isinstance(ast, Quantified):
            return self._quantified_event(plan, ast, context, variables)
        raise QueryError(f"unsupported predicate {type(ast).__name__}")

    def _quantified_event(
        self,
        plan: QueryPlan,
        ast: Quantified,
        context: PContext,
        variables: dict[str, PContext],
    ) -> Event:
        items = self._eval_nodeset(plan, ast.sequence, context, variables)
        branch_events = []
        for item in items:
            bound = dict(variables)
            bound[ast.variable] = item
            condition = self._predicate_event(plan, ast.condition, context, bound)
            if ast.kind == "some":
                branch_events.append(all_of([item.event, condition]))
            else:
                branch_events.append(all_of([item.event, negate(condition)]))
        if ast.kind == "some":
            return any_of(branch_events)
        return negate(any_of(branch_events))

    # -- values ---------------------------------------------------------------

    #: Cap on the number of distinct (value, event) realisations tracked
    #: per node; beyond this the query is asking for a cross product of
    #: value variants that has no compact answer.
    MAX_VALUE_ALTERNATIVES = 256

    def _value_alternatives(self, context: PContext) -> list[tuple[str, Event]]:
        """The possible string values of a node, each with the event under
        which that value is realised (absolute, includes existence).

        Element values follow XPath string-value semantics: the
        concatenation of all descendant text in document order, per world.
        """
        node = context.node
        if isinstance(node, (PXText, PAttr)):
            return [(node.value, context.event)]
        if isinstance(node, PXElement):
            return [
                (value, all_of([context.event, event]))
                for value, event in self._element_values(node)
            ]
        raise QueryError("the document node has no value")

    def _element_values(self, element: PXElement) -> list[tuple[str, Event]]:
        """(string value, relative event) realisations of an element —
        events mention only choices below the element."""
        alternatives: list[tuple[str, Event]] = [("", TRUE_EVENT)]
        for prob_child in element.children:
            branch_values: list[tuple[str, Event]] = []
            for index, possibility in enumerate(prob_child.possibilities):
                choice = lit(prob_child, index)
                partial: list[tuple[str, Event]] = [("", choice)]
                for child in possibility.children:
                    if isinstance(child, PXText):
                        partial = [
                            (text + child.value, event) for text, event in partial
                        ]
                    else:
                        sub_values = self._element_values(child)
                        partial = [
                            (text + sub_text, all_of([event, sub_event]))
                            for text, event in partial
                            for sub_text, sub_event in sub_values
                        ]
                branch_values.extend(partial)
            merged: list[tuple[str, Event]] = []
            for text, event in alternatives:
                for branch_text, branch_event in branch_values:
                    merged.append(
                        (text + branch_text, all_of([event, branch_event]))
                    )
            alternatives = self._dedupe_values(merged)
            if len(alternatives) > self.MAX_VALUE_ALTERNATIVES:
                raise QueryError(
                    f"value of <{element.tag}> has more than"
                    f" {self.MAX_VALUE_ALTERNATIVES} realisations;"
                    " compare a more specific node instead"
                )
        return alternatives

    @staticmethod
    def _dedupe_values(
        alternatives: list[tuple[str, Event]]
    ) -> list[tuple[str, Event]]:
        grouped: dict[str, list[Event]] = {}
        order: list[str] = []
        for value, event in alternatives:
            if value not in grouped:
                order.append(value)
            grouped.setdefault(value, []).append(event)
        return [(value, any_of(grouped[value])) for value in order]

    def _operand_alternatives(
        self,
        plan: QueryPlan,
        ast: XPathNode,
        context: PContext,
        variables: dict[str, PContext],
    ) -> list[tuple[str, Event]]:
        if isinstance(ast, Literal):
            return [(ast.value, TRUE_EVENT)]
        if isinstance(ast, Number):
            number = ast.value
            text = str(int(number)) if number == int(number) else repr(number)
            return [(text, TRUE_EVENT)]
        if isinstance(ast, (Path, UnionExpr, VarRef)):
            alternatives: list[tuple[str, Event]] = []
            for node_context in self._eval_nodeset(plan, ast, context, variables):
                alternatives.extend(self._value_alternatives(node_context))
            return alternatives
        raise QueryError(
            f"unsupported comparison operand {type(ast).__name__}"
        )

    @staticmethod
    def _compare(op: str, left: str, right: str) -> bool:
        if op in ("=", "!="):
            try:
                result = float(left) == float(right)
            except ValueError:
                result = left == right
            return result if op == "=" else not result
        try:
            left_num, right_num = float(left), float(right)
        except ValueError:
            return False
        if op == "<":
            return left_num < right_num
        if op == "<=":
            return left_num <= right_num
        if op == ">":
            return left_num > right_num
        return left_num >= right_num

    def _comparison_event(
        self,
        plan: QueryPlan,
        ast: BinaryOp,
        context: PContext,
        variables: dict[str, PContext],
    ) -> Event:
        left = self._operand_alternatives(plan, ast.left, context, variables)
        right = self._operand_alternatives(plan, ast.right, context, variables)
        matches = []
        for left_value, left_event in left:
            for right_value, right_event in right:
                if self._compare(ast.op, left_value, right_value):
                    matches.append(all_of([left_event, right_event]))
        return any_of(matches)

    def _function_event(
        self,
        plan: QueryPlan,
        ast: FunctionCall,
        context: PContext,
        variables: dict[str, PContext],
    ) -> Event:
        if ast.name == "not":
            if len(ast.args) != 1:
                raise QueryError("not() takes exactly one argument")
            return negate(
                self._predicate_event(plan, ast.args[0], context, variables)
            )
        if ast.name == "true":
            return TRUE_EVENT
        if ast.name == "false":
            return FALSE_EVENT
        if ast.name in ("contains", "starts-with", "ends-with"):
            if len(ast.args) != 2:
                raise QueryError(f"{ast.name}() takes exactly two arguments")
            left = self._operand_alternatives(plan, ast.args[0], context, variables)
            right = self._operand_alternatives(plan, ast.args[1], context, variables)
            checks = {
                "contains": lambda a, b: b in a,
                "starts-with": lambda a, b: a.startswith(b),
                "ends-with": lambda a, b: a.endswith(b),
            }
            check = checks[ast.name]
            matches = [
                all_of([left_event, right_event])
                for left_value, left_event in left
                for right_value, right_event in right
                if check(left_value, right_value)
            ]
            return any_of(matches)
        raise QueryError(
            f"function {ast.name}() is not supported in probabilistic queries"
        )


class QueryEngine(ProbQueryEngine):
    """The batch-capable query façade over one probabilistic document.

    Extends :class:`ProbQueryEngine` with the amortized entry points the
    workload benchmarks exercise:

    * :meth:`run` — evaluate one query (alias of :meth:`query`);
    * :meth:`run_batch` — evaluate many queries through one bulk
      probability pass, so sub-events shared *across* the batch are
      Shannon-expanded once;
    * :meth:`cache_stats` — the shared cache's counters.

    >>> from repro.xmlkit import parse_document
    >>> from repro.pxml import certain_document
    >>> doc = certain_document(parse_document("<r><m><t>Jaws</t></m></r>"))
    >>> [a.values() for a in QueryEngine(doc).run_batch(["//m/t", "//m"])]
    [['Jaws'], ['Jaws']]
    """

    def run(self, expression: QueryLike) -> RankedAnswer:
        """Evaluate one query; identical to :meth:`query`."""
        return self.query(expression)

    def run_batch(self, expressions: Iterable[QueryLike]) -> list[RankedAnswer]:
        """Evaluate ``expressions`` in order; answers align with inputs.

        Matches per-query :meth:`run` results exactly (Fraction-equal) —
        the batch path only changes *when* probabilities are computed:
        all answer events across the batch are collected first, then
        priced in one bulk :meth:`EventProbabilityCache.probabilities_of`
        call that factors shared sub-events.
        """
        batch = []
        for expression in expressions:
            checkpoint()
            batch.append(self.answer_events(expression))
        flat_events: list[Event] = []
        for contributions in batch:
            for event, _ in contributions.values():
                flat_events.append(event)
        flat_probs = self._probabilities(flat_events)
        answers = []
        offset = 0
        for contributions in batch:
            span = flat_probs[offset : offset + len(contributions)]
            offset += len(contributions)
            answers.append(ranked_from_probabilities(contributions, span))
        return answers

    def cache_stats(self) -> dict:
        """Counters of the shared cache ({} when caching is disabled)."""
        return self.cache.stats() if self.cache is not None else {}


def query_enumeration(
    document: PXDocument,
    expression: str,
    *,
    limit: Optional[int] = DEFAULT_WORLD_LIMIT,
) -> RankedAnswer:
    """Reference semantics: evaluate the query in every possible world and
    merge.  A value's probability is the total probability of the worlds
    whose answer contains it (duplicates within one world count once)."""
    xpath = XPath(expression)
    items: list[RankedItem] = []
    for world in iter_worlds(document, limit=limit):
        values: set[str] = set()
        result = xpath.evaluate(world.document)
        if not isinstance(result, list):
            raise QueryError("probabilistic queries must select nodes")
        for node in result:
            if isinstance(node, XElement):
                value = node.text()
            elif isinstance(node, XText):
                value = node.value
            else:
                value = getattr(node, "value", "")
            if value:
                values.add(value)
        for value in values:
            items.append(RankedItem(value, world.probability))
    return merge_ranked(items)
