"""Probabilistic querying (§VI): ranked, amalgamated answers.

"In theory, the semantics of a query is the set of possible answers
obtained by evaluating the query in each of the possible worlds
separately.  […] we can construct an amalgamated answer by merging and
ranking the elements of all possible answers."

Two implementations with identical semantics (cross-checked by tests):

* :func:`query_enumeration` — the definition, literally: evaluate the
  XPath in every world, merge answer values, sum world probabilities;
* :class:`ProbQueryEngine` — compile the query over the probabilistic
  tree into event expressions and compute exact probabilities without
  enumerating worlds.

The hot path is amortized twice: queries compile once into reusable
:class:`QueryPlan` objects (:func:`compile_plan`), and all probability
computation rides the per-document memo of
:mod:`repro.pxml.events_cache`.  :class:`QueryEngine` adds the batch API
(``run_batch``) that prices a whole workload through one bulk cache pass.
"""

from .ranking import RankedAnswer, RankedItem, ranked_from_events
from .plan import QueryPlan, compile_plan
from .engine import ProbQueryEngine, QueryEngine, query_enumeration
from .quality import AnswerQuality, answer_quality, precision_recall_at
from .aggregates import (
    AggregateSpec,
    aggregate_distribution,
    aggregate_distribution_enumerated,
    compile_aggregate,
    count_distribution,
    count_distribution_enumerated,
    count_quantile,
    exists_probability,
    expected_count,
    expected_value,
    max_distribution,
    min_distribution,
    sum_distribution,
)
from .approximate import ApproximateAnswer, ApproximateItem, approximate_query
from .fusion import (
    DEFAULT_RRF_K,
    FUSION_STRATEGIES,
    DocumentContribution,
    FusedAnswer,
    FusedItem,
    fuse_aggregates,
    fuse_answers,
    fusion_weights,
)

__all__ = [
    "RankedItem",
    "RankedAnswer",
    "ranked_from_events",
    "QueryPlan",
    "compile_plan",
    "ProbQueryEngine",
    "QueryEngine",
    "query_enumeration",
    "AnswerQuality",
    "answer_quality",
    "precision_recall_at",
    "AggregateSpec",
    "aggregate_distribution",
    "aggregate_distribution_enumerated",
    "compile_aggregate",
    "count_distribution",
    "count_distribution_enumerated",
    "exists_probability",
    "expected_count",
    "expected_value",
    "max_distribution",
    "min_distribution",
    "sum_distribution",
    "count_quantile",
    "ApproximateItem",
    "ApproximateAnswer",
    "approximate_query",
    "DEFAULT_RRF_K",
    "FUSION_STRATEGIES",
    "DocumentContribution",
    "FusedItem",
    "FusedAnswer",
    "fusion_weights",
    "fuse_answers",
    "fuse_aggregates",
]
