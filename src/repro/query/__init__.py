"""Probabilistic querying (§VI): ranked, amalgamated answers.

"In theory, the semantics of a query is the set of possible answers
obtained by evaluating the query in each of the possible worlds
separately.  […] we can construct an amalgamated answer by merging and
ranking the elements of all possible answers."

Two implementations with identical semantics (cross-checked by tests):

* :func:`query_enumeration` — the definition, literally: evaluate the
  XPath in every world, merge answer values, sum world probabilities;
* :class:`ProbQueryEngine` — compile the query over the probabilistic
  tree into event expressions and compute exact probabilities without
  enumerating worlds.
"""

from .ranking import RankedAnswer, RankedItem
from .engine import ProbQueryEngine, query_enumeration
from .quality import AnswerQuality, answer_quality, precision_recall_at
from .aggregates import (
    count_distribution,
    count_distribution_enumerated,
    count_quantile,
    expected_count,
)
from .approximate import ApproximateAnswer, ApproximateItem, approximate_query

__all__ = [
    "RankedItem",
    "RankedAnswer",
    "ProbQueryEngine",
    "query_enumeration",
    "AnswerQuality",
    "answer_quality",
    "precision_recall_at",
    "count_distribution",
    "count_distribution_enumerated",
    "expected_count",
    "count_quantile",
    "ApproximateItem",
    "ApproximateAnswer",
    "approximate_query",
]
