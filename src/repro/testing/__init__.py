"""Deterministic fault injection for the serving tier's chaos tests.

Everything here exists so that ``tests/test_chaos.py`` can make the
self-healing claims *checkable*: faults fire from a seeded plan (same
seed, same faults, same order), every firing is logged, and the injected
failures are byte-for-byte the ones production code paths classify —
real SQLite corruption on disk, real ``CacheBusyError`` from the write
path, real dead worker processes.  See :mod:`repro.testing.faults`.
"""

from .faults import (
    FaultPlan,
    corrupt_sqlite_file,
    delayed_method,
    failing_cache_writes,
)

__all__ = [
    "FaultPlan",
    "corrupt_sqlite_file",
    "delayed_method",
    "failing_cache_writes",
]
