"""Seeded, replayable fault injection (the chaos-test harness).

The serving tier claims to be self-healing: workers die and respawn,
cache files corrupt and quarantine, writes contend and get absorbed —
and through all of it answers stay Fraction-identical to a fault-free
run.  Claims like that rot unless a test can *drive* the faults, so this
module provides the injectors, built on three principles:

**Determinism.**  Every decision flows from one :class:`FaultPlan`
seeded :class:`random.Random`; the same seed replays the same faults in
the same order.  A chaos test that fails is a chaos test you can rerun.

**Observability.**  Each firing lands in :attr:`FaultPlan.fired`, so a
test can assert its faults actually happened — a chaos suite whose
faults silently never fire is green for the wrong reason.

**Realism.**  The injected failures are the ones the production
classifiers see, not lookalikes:

* :func:`corrupt_sqlite_file` produces *observable* SQLite corruption —
  it removes the ``-wal``/``-shm`` sidecars and replaces the main file
  under a fresh inode, because an in-place garble is masked by the page
  cache and a leftover WAL lets SQLite quietly self-heal;
* :func:`failing_cache_writes` raises the typed
  :class:`~repro.errors.CacheBusyError` from the store's own write
  transaction entry point, exactly where real writer-convoy exhaustion
  surfaces;
* worker kills in the chaos tests go through ``proc.kill()`` on the real
  child process — nothing here fakes a death.

Stdlib only; nothing in this module imports test frameworks.
"""

from __future__ import annotations

import random
import time
from contextlib import contextmanager
from pathlib import Path
from typing import Iterator, Union

from ..errors import CacheBusyError
from ..dbms.cache_store import AnswerCacheStore

__all__ = [
    "FaultPlan",
    "corrupt_sqlite_file",
    "delayed_method",
    "failing_cache_writes",
]

#: Deterministic junk written in place of a corrupted SQLite file: long
#: enough to overrun the 100-byte header SQLite validates, and visibly
#: not a database to anyone inspecting a quarantined ``*.corrupt-N``.
_JUNK = b"impreciselint-chaos: this is deliberately not a sqlite file\x00" * 32


class FaultPlan:
    """One seeded source of every fault decision in a chaos run.

    >>> plan = FaultPlan(seed=7)
    >>> plan.should("cache-write-busy", 1.0)
    True
    >>> plan.fired
    [('cache-write-busy',)]

    ``should(name, probability)`` draws from the plan's private
    :class:`random.Random`; a draw below ``probability`` fires the fault
    and logs it.  ``choice`` picks a victim (which worker to kill, which
    document to corrupt) from the same stream.  Two plans with the same
    seed make identical decisions in the same call order — replaying a
    failing chaos test is just reusing its seed.
    """

    def __init__(self, seed: int = 0):
        self._random = random.Random(seed)
        self.seed = seed
        #: Chronological log of fired faults, one tuple per firing; a
        #: test asserts on this to prove its faults actually happened.
        self.fired: list = []

    def should(self, name: str, probability: float = 1.0) -> bool:
        """Decide (and log) whether the fault ``name`` fires this time."""
        if not 0.0 <= probability <= 1.0:
            raise ValueError(
                f"probability must be within [0, 1], got {probability!r}"
            )
        # Draw unconditionally so the stream position advances the same
        # way whether or not the fault fires — determinism would break
        # if a probability tweak shifted every later decision.
        fire = self._random.random() < probability
        if fire:
            self.fired.append((name,))
        return fire

    def choice(self, name: str, options: list) -> object:
        """Pick (and log) one victim from ``options``."""
        if not options:
            raise ValueError(f"fault {name!r} has no options to pick from")
        picked = self._random.choice(list(options))
        self.fired.append((name, picked))
        return picked

    def count(self, name: str) -> int:
        """How many times the fault ``name`` has fired so far."""
        return sum(1 for entry in self.fired if entry[0] == name)

    def __repr__(self) -> str:
        return f"FaultPlan(seed={self.seed}, fired={len(self.fired)})"


def corrupt_sqlite_file(path: Union[str, Path]) -> Path:
    """Corrupt the SQLite file at ``path`` so the *next* open or
    statement observably fails classification as corruption.

    Three steps, each load-bearing:

    1. the ``-wal``/``-shm`` sidecars are deleted — a surviving WAL lets
       SQLite roll the damage back and self-heal silently;
    2. the main file is unlinked, not truncated — an in-place overwrite
       can be masked by the OS page cache and open file descriptors;
    3. a fresh file of non-SQLite junk is created at the same path (a
       new inode), so an open sees ``file is not a database``.

    Returns the path, for chaining into assertions.
    """
    path = Path(path)
    if not path.exists():
        raise FileNotFoundError(f"no cache file to corrupt at {path}")
    for suffix in ("-wal", "-shm"):
        Path(str(path) + suffix).unlink(missing_ok=True)
    path.unlink()
    path.write_bytes(_JUNK)
    return path


@contextmanager
def failing_cache_writes(
    store: AnswerCacheStore,
    plan: FaultPlan,
    *,
    probability: float = 1.0,
) -> Iterator[AnswerCacheStore]:
    """Make ``store``'s write transactions raise the typed
    :class:`~repro.errors.CacheBusyError` per ``plan``.

    The hook wraps :meth:`AnswerCacheStore._write_txn_locked` — the one
    funnel every persistent write passes through — so an injected
    failure surfaces exactly where real busy-budget exhaustion does.
    Reads are untouched: a busy writer never costs a warm hit.  The
    original method is restored on exit, even on error.
    """
    original = store._write_txn_locked

    def inject(apply) -> None:
        if plan.should("cache-write-busy", probability):
            raise CacheBusyError(
                f"injected by FaultPlan(seed={plan.seed}): cache write on"
                f" {store.path} busy"
            )
        original(apply)

    store._write_txn_locked = inject  # type: ignore[method-assign]
    try:
        yield store
    finally:
        store._write_txn_locked = original  # type: ignore[method-assign]


@contextmanager
def delayed_method(
    target: object,
    method_name: str,
    plan: FaultPlan,
    *,
    seconds: float,
    probability: float = 1.0,
) -> Iterator[object]:
    """Stall calls of ``target.method_name`` by ``seconds`` per ``plan``.

    The stall happens *before* the original method runs, which is how a
    response delay looks to a caller holding a deadline: the budget
    drains while the work has not started.  Used by the chaos suite to
    force ``deadline_ms`` expiries at a controlled point instead of
    relying on real documents being slow.  Restores the original method
    on exit, even on error.
    """
    if seconds < 0:
        raise ValueError(f"seconds must be >= 0, got {seconds}")
    original = getattr(target, method_name)

    def stall(*args, **kwargs):
        if plan.should(f"delay:{method_name}", probability):
            time.sleep(seconds)
        return original(*args, **kwargs)

    setattr(target, method_name, stall)
    try:
        yield target
    finally:
        setattr(target, method_name, original)
