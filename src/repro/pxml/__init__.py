"""Probabilistic XML: the paper's §II data model and its semantics.

The layered tree has three node kinds:

* **probability nodes** (▽, :class:`ProbNode`) — choice points; their
  children are possibility nodes;
* **possibility nodes** (○, :class:`Possibility`) — one alternative with an
  associated probability; sibling possibilities are mutually exclusive and
  their probabilities sum to 1; their children are regular XML nodes;
* **regular nodes** (:class:`PXElement` / :class:`PXText`) — ordinary XML;
  element children are probability nodes again.

The root of a probabilistic document is always a probability node.  A
document where every probability node has a single possibility with
probability 1 is *certain*.
"""

from .model import (
    PXDocument,
    PXElement,
    PXText,
    Possibility,
    ProbNode,
    px_canonical_key,
    px_deep_equal,
    validate_document,
)
from .build import (
    certain_document,
    certain_element,
    certain_prob,
    choice_prob,
    to_certain,
)
from .worlds import World, distinct_worlds, iter_worlds, world_count
from .events import (
    Event,
    FALSE_EVENT,
    TRUE_EVENT,
    all_of,
    any_of,
    event_probability,
    independent_components,
    interned_count,
    lit,
    none_of,
    pivot_variable,
    product_of,
    weighted_sum,
)
from .events_compile import (
    CompiledEvent,
    LiteralProbabilityTable,
    compile_event,
    compiled_probability,
    iter_compiled,
    shared_literal_table,
)
from .events_cache import (
    DEFAULT_MAX_ENTRIES,
    EventProbabilityCache,
    cache_for,
    invalidate,
    registered_count,
)
from .stats import NodeStats, expected_world_size, node_count, tree_stats
from .simplify import SimplifyReport, simplify, simplify_fixpoint
from .serialize import parse_pxml, pxml_to_text, pxml_to_xml, xml_to_pxml
from .sampling import sample_world, sample_worlds
from .measures import UncertaintyProfile, uncertainty_profile, world_entropy

__all__ = [
    "ProbNode",
    "Possibility",
    "PXElement",
    "PXText",
    "PXDocument",
    "validate_document",
    "px_canonical_key",
    "px_deep_equal",
    "certain_document",
    "certain_element",
    "certain_prob",
    "choice_prob",
    "to_certain",
    "World",
    "iter_worlds",
    "world_count",
    "distinct_worlds",
    "Event",
    "TRUE_EVENT",
    "FALSE_EVENT",
    "lit",
    "all_of",
    "any_of",
    "none_of",
    "event_probability",
    "independent_components",
    "interned_count",
    "pivot_variable",
    "product_of",
    "weighted_sum",
    "CompiledEvent",
    "LiteralProbabilityTable",
    "compile_event",
    "compiled_probability",
    "iter_compiled",
    "shared_literal_table",
    "DEFAULT_MAX_ENTRIES",
    "EventProbabilityCache",
    "cache_for",
    "invalidate",
    "registered_count",
    "NodeStats",
    "node_count",
    "tree_stats",
    "expected_world_size",
    "SimplifyReport",
    "simplify",
    "simplify_fixpoint",
    "pxml_to_xml",
    "xml_to_pxml",
    "pxml_to_text",
    "parse_pxml",
    "sample_world",
    "sample_worlds",
    "UncertaintyProfile",
    "uncertainty_profile",
    "world_entropy",
]
