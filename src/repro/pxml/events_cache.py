"""Memoized event-probability computation, shared per document.

The query engine prices every answer as the probability of an
OR-of-occurrences event (:func:`repro.pxml.events.event_probability`).
Distinct queries over one document keep re-deriving the same sub-events —
the same persons, the same choice points, the same guarded conjunctions —
so recomputing each query from scratch throws away almost all of the
kernel's work.  This module provides the shared memo table that
amortizes it:

* :class:`EventProbabilityCache` — a keyed memo over ``event_probability``.
  Keys are the events' *interned canonical digests*
  (:attr:`repro.pxml.events.Event.digest` — computed once at
  construction; hash-consing makes structurally equal events built by
  different queries carry the same digest), so a lookup is one bytes
  hash, not a canonical-form serialization.  The memo is threaded
  straight into the kernel, which means every **sub**-event decomposed or
  conditioned along the way lands in the table too; a later query whose
  events overlap resolves from the cache without expanding at all.
  Digest keys also outlive the event objects themselves: an event can be
  garbage-collected and rebuilt later, and it still hits.
* a bounded memo with **LRU** eviction: the table holds at most
  ``max_entries`` probabilities (default :data:`DEFAULT_MAX_ENTRIES`);
  beyond that the least-recently-*used* entries are evicted and the
  ``evictions`` counter advances.  Every :meth:`~EventProbabilityCache.
  probability` hit refreshes its row's recency, and the freshly-priced
  root of a miss is always the youngest row — so a hot working set
  survives a bound equal to its size, and the event a caller just asked
  for can never be evicted by its own sub-expansion.  The bound is
  enforced *between* evaluations, so a single expansion may briefly
  overshoot; correctness never depends on residency — an evicted entry
  is simply re-expanded.
* compiled top-down pricing: a miss is compiled into a
  component-factored plan (:func:`repro.pxml.events_compile.
  compile_event`) and priced by :func:`~repro.pxml.events_compile.
  compiled_probability` over the same digest-keyed memo, with literal
  and small-conjunction rows resolved through the **cross-document**
  :class:`~repro.pxml.events_compile.LiteralProbabilityTable` (the
  process-shared table by default), so pricing one plan across a
  dataspace of N documents reuses rows instead of re-deriving them.
  The bottom-up kernel (``use_cache=False`` engines, or calling
  :func:`~repro.pxml.events.event_probability` directly) remains the
  differential reference; the two are Fraction-identical.
* :meth:`EventProbabilityCache.probabilities_of` — the bulk entry point
  for query batches.  Events are processed smallest-variable-set first so
  shared sub-events are expanded exactly once and every larger event's
  expansion terminates at already-cached frontiers.
* a per-document registry (:func:`cache_for`) so independent engines,
  aggregates and rankers over the same :class:`~repro.pxml.model.PXDocument`
  share one table, and
* :func:`invalidate` — the invalidation hook.

**Invalidation rules.** Cache entries are keyed by choice-variable uids
(and, for answer/aggregate side tables, the document's root uid) and
fold in the possibility probabilities at expansion time, so they are
valid exactly as long as the document's probability nodes keep their
possibility lists and probabilities.  The library's document
transformations — :func:`repro.pxml.simplify.simplify`, feedback
conditioning (:func:`repro.feedback.conditioning.condition_on_event`),
incremental re-integration — are *functional*: they copy with fresh
uids and return fresh documents whose caches start empty, so the input
document's cache stays valid and nothing needs invalidating; a
superseded document's cache is reclaimed with the document itself (the
registry holds it weakly).  :func:`invalidate` is the hook for the one
case the library cannot see: code that mutates a document's probability
nodes *in place* (appending possibilities, editing probs) after
querying it must call it, or stale probabilities will be served.  Plain
queries never mutate and never invalidate.
"""

from __future__ import annotations

import weakref
from fractions import Fraction
from typing import Optional, Sequence

from .events import Event, FALSE_EVENT, TRUE_EVENT
from .events_compile import (
    LiteralProbabilityTable,
    compile_event,
    compiled_probability,
    shared_literal_table,
)
from .model import PXDocument

#: A compiled plan/spec fingerprint (see ``QueryPlan.fingerprint``).
_Fingerprint = tuple[object, ...]
#: value -> (answer event, occurrence count) — ``answer_events`` shape.
_AnswerEvents = dict[str, tuple[Event, int]]
#: outcome -> probability (aggregate distributions; outcomes are ints,
#: Fractions or the ``None`` no-match value).
_Distribution = dict[object, Fraction]

__all__ = [
    "DEFAULT_MAX_ENTRIES",
    "EventProbabilityCache",
    "LiteralProbabilityTable",
    "cache_for",
    "invalidate",
    "registered_count",
    "shared_literal_table",
]

#: Default bound on memoized event probabilities per cache.  An entry is
#: a 16-byte digest plus a Fraction — the default keeps a busy document's
#: table in the tens of megabytes.  Pass ``max_entries=None`` for the
#: pre-PR-4 unbounded behaviour.
DEFAULT_MAX_ENTRIES = 250_000


class EventProbabilityCache:
    """A keyed memo table over :func:`event_probability`.

    One instance serves one probabilistic document (or one lifetime of
    it — see the invalidation rules in the module docstring).  The table
    is also the batch evaluator: :meth:`probabilities_of` orders a batch
    so shared sub-events are factored out and computed once.  The memo is
    bounded by ``max_entries`` (least-recently-used eviction, counted in
    ``evictions``); the answer/aggregate side tables are not — they hold
    one entry per distinct (plan, document) pair, which workloads bound
    naturally.  ``literal_table`` is the cross-document row store misses
    price through (defaults to the process-shared
    :func:`~repro.pxml.events_compile.shared_literal_table`; pass an
    explicit :class:`~repro.pxml.events_compile.LiteralProbabilityTable`
    to isolate or to share a custom one).

    >>> from repro.pxml.build import certain_document
    >>> from repro.xmlkit.parser import parse_document
    >>> doc = certain_document(parse_document("<r><a/></r>"))
    >>> cache = cache_for(doc)
    >>> cache is cache_for(doc)  # one shared table per document
    True
    """

    __slots__ = (
        "_memo",
        "_answers",
        "_aggregates",
        "hits",
        "misses",
        "evictions",
        "max_entries",
        "literal_table",
    )

    def __init__(
        self,
        *,
        max_entries: Optional[int] = DEFAULT_MAX_ENTRIES,
        literal_table: Optional[LiteralProbabilityTable] = None,
    ) -> None:
        if max_entries is not None and max_entries <= 0:
            raise ValueError("max_entries must be positive (or None)")
        #: canonical digest -> exact probability; shared with (and
        #: populated by) the kernel itself.
        self._memo: dict[bytes, Fraction] = {}
        #: (root uid, plan fingerprint) -> answer-event map.
        self._answers: dict[tuple[int, _Fingerprint], _AnswerEvents] = {}
        #: auxiliary memo for aggregate distributions (see aggregates.py).
        self._aggregates: dict[tuple[int, _Fingerprint], _Distribution] = {}
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.max_entries = max_entries
        #: The cross-document literal/product row store (see the module
        #: docstring); plain attribute, reassignable by owners that
        #: thread their own table through (the dataspace service does).
        self.literal_table: LiteralProbabilityTable = (
            literal_table if literal_table is not None
            else shared_literal_table()
        )

    # -- probabilities ------------------------------------------------------

    def probability(self, event: Event) -> Fraction:
        """Exact probability of ``event``, memoized on its digest.

        Hits refresh the row's recency (the memo evicts least-recently-
        used); misses compile the event top-down
        (:func:`~repro.pxml.events_compile.compile_event`) and price the
        factored plan through the shared memo and the cross-document
        ``literal_table``.  The freshly-priced row is moved to the young
        end before the bound is enforced, so the event a caller just
        asked for always survives its own enforcement pass — even at
        ``max_entries=1``.
        """
        if event is TRUE_EVENT:
            return Fraction(1)
        if event is FALSE_EVENT:
            return Fraction(0)
        memo = self._memo
        digest = event.digest
        cached = memo.get(digest)
        if cached is not None:
            self.hits += 1
            # LRU, not FIFO: a hit re-inserts the row at the young end
            # (``move_to_end`` semantics on a plain dict), so eviction —
            # which walks insertion order — takes the coldest row, not
            # the earliest-seeded shared sub-event.
            del memo[digest]
            memo[digest] = cached
            return cached
        self.misses += 1
        result = compiled_probability(
            compile_event(event), memo=memo, table=self.literal_table
        )
        # Guarantee the queried row is the youngest before enforcement:
        # eviction removes ``len - max_entries`` rows from the old end,
        # which can never reach the last row while the bound is >= 1.
        if digest in memo:
            del memo[digest]
        memo[digest] = result
        self._enforce_bound()
        return result

    def probabilities_of(self, events: Sequence[Event]) -> list[Fraction]:
        """Bulk probabilities, aligned with ``events``.

        The batch is expanded smallest-variable-set first: small events
        are typically the shared sub-events of larger ones (an occurrence
        conjunction is a sub-event of every OR it participates in), so
        seeding the memo with them lets every later expansion terminate
        at an already-priced frontier instead of re-deriving it.
        """
        order = sorted(
            range(len(events)),
            key=lambda i: len(events[i].vars),
        )
        # Placeholder value only: ``order`` covers every index.
        results: list[Fraction] = [Fraction(0)] * len(events)
        for i in order:
            results[i] = self.probability(events[i])
        return results

    def _enforce_bound(self) -> None:
        """Evict least-recently-used memo entries beyond ``max_entries``
        (hits re-insert at the young end, so insertion order *is*
        recency order).  Called between evaluations only, so an
        in-flight expansion always sees every sub-result it just
        computed, and always after the just-queried row is moved to the
        young end, so it survives its own enforcement pass."""
        cap = self.max_entries
        if cap is None:
            return
        memo = self._memo
        excess = len(memo) - cap
        if excess <= 0:
            return
        iterator = iter(memo)
        for digest in [next(iterator) for _ in range(excess)]:
            del memo[digest]
        self.evictions += excess

    # -- side tables --------------------------------------------------------

    # Unlike the event memo (safe across documents: literal digests fold
    # in globally-unique choice uids), answer maps and aggregates are
    # keyed by *query* structure, which is document-independent — so
    # their keys are qualified with the document's root uid (also
    # globally unique, never reused, unlike ``id()``).  A cache instance
    # explicitly shared across documents then keeps each document's
    # answers separate.

    @staticmethod
    def _doc_key(document: PXDocument) -> int:
        uid: int = document.root.uid
        return uid

    def answer_events(
        self, document: PXDocument, fingerprint: _Fingerprint
    ) -> Optional[dict[str, tuple[Event, int]]]:
        """Cached answer-event map of ``document`` for a compiled plan."""
        return self._answers.get((self._doc_key(document), fingerprint))

    def store_answer_events(
        self,
        document: PXDocument,
        fingerprint: _Fingerprint,
        events: dict[str, tuple[Event, int]],
    ) -> None:
        self._answers[(self._doc_key(document), fingerprint)] = events

    def aggregate(
        self, document: PXDocument, key: _Fingerprint
    ) -> Optional[dict[object, Fraction]]:
        """Cached aggregate distribution (e.g. a count distribution)."""
        return self._aggregates.get((self._doc_key(document), key))

    def store_aggregate(
        self,
        document: PXDocument,
        key: _Fingerprint,
        distribution: dict[object, Fraction],
    ) -> None:
        self._aggregates[(self._doc_key(document), key)] = distribution

    # -- maintenance --------------------------------------------------------

    def clear(self) -> None:
        """Drop every entry (memo, answer maps, aggregates)."""
        self._memo.clear()
        self._answers.clear()
        self._aggregates.clear()

    def __len__(self) -> int:
        return len(self._memo)

    def stats(self) -> dict[str, int]:
        """Counters for benchmarks and diagnostics."""
        return {
            "entries": len(self._memo),
            "answers": len(self._answers),
            "aggregates": len(self._aggregates),
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
        }

    def __repr__(self) -> str:
        return (
            f"EventProbabilityCache(entries={len(self._memo)},"
            f" hits={self.hits}, misses={self.misses},"
            f" evictions={self.evictions})"
        )


#: document -> its shared cache; weak keys so caches die with documents.
_REGISTRY: "weakref.WeakKeyDictionary[PXDocument, EventProbabilityCache]" = (
    weakref.WeakKeyDictionary()
)


def cache_for(document: PXDocument) -> EventProbabilityCache:
    """The shared :class:`EventProbabilityCache` of ``document``
    (created on first use)."""
    cache = _REGISTRY.get(document)
    if cache is None:
        cache = EventProbabilityCache()
        _REGISTRY[document] = cache
    return cache


def registered_count() -> int:
    """Number of live documents with a registered cache (diagnostics).

    The registry holds documents weakly, so this shrinks as documents are
    collected — e.g. after :class:`~repro.dbms.store.DocumentStore` LRU
    eviction drops the last reference to a materialized document, its
    event cache leaves the registry with it.
    """
    return len(_REGISTRY)


def invalidate(document: PXDocument) -> None:
    """Drop ``document``'s cached probabilities.

    Required after mutating the document's probability nodes in place
    (the library's own transformations are functional and never need
    it — see the module docstring).  Clears the cache object (so engines
    already holding it recompute) and unregisters it, and drops the
    document's literal rows from the cross-document tables — the
    cache's own ``literal_table`` and the process-shared one — so no
    other document's pricing is ever served a stale Fraction through a
    shared row.  (Product rows are value-keyed pure arithmetic and
    survive; a changed input simply produces a different key.)  Safe to
    call when the document has no cache yet: the shared table is still
    swept.
    """
    cache = _REGISTRY.pop(document, None)
    tables = [shared_literal_table()]
    if cache is not None:
        cache.clear()
        if cache.literal_table is not tables[0]:
            tables.append(cache.literal_table)
    for table in tables:
        table.invalidate_document(document)
