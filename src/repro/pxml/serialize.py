"""Wire format for probabilistic XML.

Probabilistic trees round-trip through plain XML using two reserved tags
(the spelling MonetDB-era tools used namespaces for; our plain parser keeps
the prefix literal):

* ``<p:prob>`` — a probability node;
* ``<p:poss prob="1/3">`` — a possibility with its probability (exact
  fraction or decimal string).

Everything else is ordinary XML.  Example::

    <p:prob>
      <p:poss prob="1/2">
        <person>
          <p:prob><p:poss prob="1"><nm>John</nm></p:poss></p:prob>
        </person>
      </p:poss>
      ...
    </p:prob>
"""

from __future__ import annotations

from ..errors import ModelError
from ..xmlkit.nodes import XDocument, XElement, XText
from ..xmlkit.parser import parse_document
from ..xmlkit.serializer import serialize, serialize_pretty
from .model import PXChild, PXDocument, PXElement, PXText, Possibility, ProbNode

PROB_TAG = "p:prob"
POSS_TAG = "p:poss"
PROB_ATTR = "prob"


def pxml_to_xml(node: PXDocument | ProbNode | PXElement) -> XElement:
    """Encode a probabilistic subtree as plain XML."""
    if isinstance(node, PXDocument):
        return _encode_prob(node.root)
    if isinstance(node, ProbNode):
        return _encode_prob(node)
    if isinstance(node, PXElement):
        element = XElement(node.tag, dict(node.attributes))
        for child in node.children:
            element.append(_encode_prob(child))
        return element
    raise ModelError(f"cannot serialize {type(node).__name__}")


def _encode_prob(node: ProbNode) -> XElement:
    wrapper = XElement(PROB_TAG)
    for possibility in node.possibilities:
        poss = XElement(POSS_TAG, {PROB_ATTR: str(possibility.prob)})
        buffer: list[str] = []
        for child in possibility.children:
            if isinstance(child, PXText):
                # Adjacent text runs merge on the wire (the parser cannot
                # tell them apart, and worlds concatenate them anyway).
                buffer.append(child.value)
                continue
            if buffer:
                poss.append(XText("".join(buffer)))
                buffer = []
            poss.append(pxml_to_xml(child))
        if buffer:
            poss.append(XText("".join(buffer)))
        wrapper.append(poss)
    return wrapper


def pxml_to_text(document: PXDocument, *, pretty: bool = False) -> str:
    """Serialize a probabilistic document to XML text."""
    encoded = _encode_prob(document.root)
    return serialize_pretty(encoded) if pretty else serialize(encoded)


def xml_to_pxml(element: XElement) -> ProbNode:
    """Decode the plain-XML encoding back into a probabilistic tree."""
    if element.tag != PROB_TAG:
        raise ModelError(f"expected <{PROB_TAG}> root, got <{element.tag}>")
    return _decode_prob(element)


def _decode_prob(element: XElement) -> ProbNode:
    node = ProbNode()
    for child in element.children:
        if isinstance(child, XText):
            if child.value.strip():
                raise ModelError(f"unexpected text inside <{PROB_TAG}>")
            continue
        if child.tag != POSS_TAG:
            raise ModelError(
                f"children of <{PROB_TAG}> must be <{POSS_TAG}>, got <{child.tag}>"
            )
        prob = child.attributes.get(PROB_ATTR)
        if prob is None:
            raise ModelError(f"<{POSS_TAG}> missing {PROB_ATTR!r} attribute")
        possibility = Possibility(prob)
        for grandchild in child.children:
            if isinstance(grandchild, XText):
                if grandchild.value.strip():
                    possibility.append(PXText(grandchild.value))
            else:
                possibility.append(_decode_element(grandchild))
        node.append(possibility)
    return node


def _decode_element(element: XElement) -> PXElement:
    if element.tag in (PROB_TAG, POSS_TAG):
        raise ModelError(f"misplaced <{element.tag}>")
    result = PXElement(element.tag, dict(element.attributes))
    for child in element.children:
        if isinstance(child, XText):
            if child.value.strip():
                raise ModelError(
                    f"text under <{element.tag}> must be wrapped in a"
                    f" possibility (found {child.value!r})"
                )
            continue
        result.append(_decode_prob(child))
    return result


def parse_pxml(text: str) -> PXDocument:
    """Parse the XML encoding of a probabilistic document.

    >>> doc = parse_pxml('<p:prob><p:poss prob="1"><a/></p:poss></p:prob>')
    >>> doc.is_certain()
    True
    """
    document = parse_document(text)
    return PXDocument(xml_to_pxml(document.root))
