"""Compaction of probabilistic trees.

Integration results often carry redundancy: zero-probability branches,
duplicate possibilities that arose from different choice combinations, and
subtrees repeated in *every* possibility of a choice (which therefore carry
no uncertainty at all).  These passes shrink the representation without
changing the distribution over worlds — the invariant the property tests
enforce via :func:`repro.pxml.worlds.distinct_worlds`.

Passes:

* ``prune_zero`` — drop possibilities with probability 0;
* ``merge_duplicates`` — merge structurally identical sibling
  possibilities, summing their probabilities;
* ``factor_common`` — move children that occur (deep-equally) in every
  possibility of a choice out into their own certain probability node
  (skipped for choices with top-level text: extraction would reorder
  elements relative to text runs and change what worlds see);
* ``collapse_trivial`` — splice nested certain single-text/element wrappers
  produced by the other passes (merging a probability node whose single
  possibility holds elements into a flat form is already the certain
  representation, so this pass only tidies degenerate empty possibilities).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from fractions import Fraction
from typing import Optional, Sequence

from ..probability import ONE, normalize
from .model import (
    PXChild,
    PXDocument,
    PXElement,
    PXText,
    Possibility,
    ProbNode,
    _content_keys,
    _yields_top_text,
    px_canonical_key,
)

ALL_PASSES = ("prune_zero", "merge_duplicates", "factor_common", "collapse_trivial")


@dataclass
class SimplifyReport:
    """What simplification achieved."""

    nodes_before: int = 0
    nodes_after: int = 0
    zero_pruned: int = 0
    duplicates_merged: int = 0
    common_factored: int = 0
    trivial_collapsed: int = 0

    @property
    def nodes_saved(self) -> int:
        return self.nodes_before - self.nodes_after

    def summary(self) -> str:
        return (
            f"{self.nodes_before} → {self.nodes_after} nodes"
            f" (saved {self.nodes_saved}; pruned {self.zero_pruned},"
            f" merged {self.duplicates_merged}, factored {self.common_factored})"
        )


def simplify(
    document: PXDocument,
    *,
    passes: Sequence[str] = ALL_PASSES,
    renormalize: bool = False,
) -> tuple[PXDocument, SimplifyReport]:
    """Return a simplified copy of ``document`` plus a report.

    With ``renormalize`` each probability node is rescaled to sum to 1
    after pruning (used by feedback conditioning, where pruning removes
    probability mass on purpose).
    """
    unknown = set(passes) - set(ALL_PASSES)
    if unknown:
        raise ValueError(f"unknown simplify passes: {sorted(unknown)}")
    report = SimplifyReport(nodes_before=document.node_count())
    root = _simplify_prob(document.root.copy(), set(passes), renormalize, report)
    result = PXDocument(root)
    report.nodes_after = result.node_count()
    return result, report


def simplify_fixpoint(
    document: PXDocument,
    *,
    passes: Sequence[str] = ALL_PASSES,
    renormalize: bool = False,
    max_rounds: int = 10,
) -> tuple[PXDocument, SimplifyReport]:
    """Iterate :func:`simplify` until the node count stops shrinking.

    One pass can expose further opportunities (factoring a common child may
    leave duplicate possibilities, which the next round merges), so a small
    fixpoint loop recovers the fully compact form.
    """
    total = SimplifyReport(nodes_before=document.node_count())
    current = document
    for _ in range(max_rounds):
        current, report = simplify(current, passes=passes, renormalize=renormalize)
        total.zero_pruned += report.zero_pruned
        total.duplicates_merged += report.duplicates_merged
        total.common_factored += report.common_factored
        total.trivial_collapsed += report.trivial_collapsed
        if report.nodes_saved == 0:
            break
    total.nodes_after = current.node_count()
    return current, total


def _simplify_prob(
    node: ProbNode, passes: set[str], renormalize: bool, report: SimplifyReport
) -> ProbNode:
    # Bottom-up: simplify below each possibility first.
    for possibility in node.possibilities:
        possibility.children = [
            _simplify_child(child, passes, renormalize, report)
            for child in possibility.children
        ]

    possibilities = list(node.possibilities)

    if "prune_zero" in passes:
        kept = [p for p in possibilities if p.prob > 0]
        report.zero_pruned += len(possibilities) - len(kept)
        possibilities = kept or possibilities

    if "merge_duplicates" in passes and len(possibilities) > 1:
        merged: dict[tuple, Possibility] = {}
        order: list[tuple] = []
        for possibility in possibilities:
            key = _content_keys(possibility.children)
            if key in merged:
                existing = merged[key]
                total = existing.prob + possibility.prob
                replacement = Possibility(min(total, ONE))
                replacement.children = existing.children
                merged[key] = replacement
                report.duplicates_merged += 1
            else:
                merged[key] = possibility
                order.append(key)
        possibilities = [merged[key] for key in order]

    if renormalize and possibilities:
        scaled = normalize([p.prob for p in possibilities])
        for possibility, prob in zip(possibilities, scaled):
            possibility.prob = prob

    node.possibilities = possibilities
    return node


def _simplify_child(
    child: PXChild, passes: set[str], renormalize: bool, report: SimplifyReport
) -> PXChild:
    if isinstance(child, PXText):
        return child
    assert isinstance(child, PXElement)
    child.children = [
        _simplify_prob(prob_child, passes, renormalize, report)
        for prob_child in child.children
    ]
    if "factor_common" in passes:
        child.children = _factor_common(child.children, report)
    if "collapse_trivial" in passes:
        child.children = _collapse_trivial(child.children, report)
    return child


def _factor_common(children: list[ProbNode], report: SimplifyReport) -> list[ProbNode]:
    """For each uncertain probability node, move children that appear
    (deep-equally) in *every* possibility out into certain siblings.

    Nodes whose possibilities carry top-level text are left alone:
    extracting an element from a mixed-content possibility would reorder
    it relative to that text, and text-run concatenation order is
    semantically meaningful (it is what worlds see) — factoring there
    would change the distribution over worlds.  Pure element content is
    order-insensitive (the library's deep-equal semantics), so the move
    is sound exactly when no possibility can contribute text at this
    level.
    """
    result: list[ProbNode] = []
    # One canonical key per distinct child per pass: _common_child_keys
    # and _remove_by_keys both need the keys, and px_canonical_key is a
    # full-subtree serialization — compute it once, not once per use.
    key_memo: dict[int, tuple] = {}
    for prob_node in children:
        if len(prob_node.possibilities) <= 1 or _yields_top_text(prob_node):
            result.append(prob_node)
            continue
        common = _common_child_keys(prob_node.possibilities, key_memo)
        if not common:
            result.append(prob_node)
            continue
        extracted: list[PXChild] = []
        for possibility in prob_node.possibilities:
            removed = _remove_by_keys(possibility, dict(common), key_memo)
            if not extracted:
                extracted = removed
        for item in extracted:
            certain = ProbNode([Possibility(ONE, [item])])
            result.append(certain)
            report.common_factored += 1
        result.append(prob_node)
    return result


def _child_key(child: PXChild, key_memo: dict[int, tuple]) -> tuple:
    key = key_memo.get(id(child))
    if key is None:
        key = px_canonical_key(child)
        key_memo[id(child)] = key
    return key


def _common_child_keys(
    possibilities: list[Possibility], key_memo: dict[int, tuple]
) -> dict[tuple, int]:
    """Multiset intersection of *element* child keys across possibilities.

    Text children are never factored: their concatenation order is
    semantically meaningful and extracting them cannot shrink the tree.
    Elements are only counted when extraction actually saves nodes —
    moving a child out costs a probability+possibility wrapper (2 nodes)
    and keeps one copy, so it pays off only when
    ``size · (n_possibilities − 1) > 2``.
    """
    threshold_copies = len(possibilities) - 1
    common: Optional[dict[tuple, int]] = None
    for possibility in possibilities:
        counts: dict[tuple, int] = {}
        for child in possibility.children:
            if not isinstance(child, PXElement):
                continue
            if child.node_count() * threshold_copies <= 2:
                continue
            key = _child_key(child, key_memo)
            counts[key] = counts.get(key, 0) + 1
        if common is None:
            common = counts
        else:
            common = {
                key: min(count, counts.get(key, 0))
                for key, count in common.items()
                if counts.get(key, 0) > 0
            }
        if not common:
            return {}
    return common or {}


def _remove_by_keys(
    possibility: Possibility, budget: dict[tuple, int], key_memo: dict[int, tuple]
) -> list[PXChild]:
    """Remove up to ``budget[key]`` children matching each key; return the
    removed children (used as the extracted representatives)."""
    removed: list[PXChild] = []
    kept: list[PXChild] = []
    for child in possibility.children:
        key = _child_key(child, key_memo)
        if budget.get(key, 0) > 0:
            budget[key] -= 1
            removed.append(child)
        else:
            kept.append(child)
    possibility.children = kept
    return removed


def _collapse_trivial(
    children: list[ProbNode], report: SimplifyReport
) -> list[ProbNode]:
    """Drop probability nodes whose every possibility is empty (they encode
    no content and no uncertainty about content)."""
    result: list[ProbNode] = []
    for prob_node in children:
        if all(not p.children for p in prob_node.possibilities):
            report.trivial_collapsed += 1
            continue
        result.append(prob_node)
    return result
