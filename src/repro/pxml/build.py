"""Converters between plain XML and probabilistic XML.

The central convention set here (and relied on throughout integration and
node counting): a *certain* plain element maps to a probabilistic element
where **each child gets its own certain probability node** — one choice
point per child position.  Choices that integration later introduces group
several children under a single shared probability node instead.
"""

from __future__ import annotations

from typing import Sequence, Union

from ..errors import ModelError
from ..probability import ONE, ProbLike, as_probability
from ..xmlkit.nodes import XDocument, XElement, XText, XChild
from .model import PXChild, PXDocument, PXElement, PXText, Possibility, ProbNode


def certain_prob(children: Union[PXChild, Sequence[PXChild]]) -> ProbNode:
    """Wrap regular node(s) into a certain probability node (1 possibility,
    probability 1)."""
    if isinstance(children, (PXElement, PXText)):
        children = [children]
    return ProbNode([Possibility(ONE, list(children))])


def choice_prob(
    alternatives: Sequence[tuple[ProbLike, Sequence[PXChild]]]
) -> ProbNode:
    """Build a choice point from ``(probability, children)`` alternatives.

    >>> from repro.pxml import world_count, PXDocument
    >>> tel = choice_prob([("1/2", [PXText("1111")]), ("1/2", [PXText("2222")])])
    >>> len(tel.possibilities)
    2
    """
    if not alternatives:
        raise ModelError("a choice needs at least one alternative")
    node = ProbNode()
    for prob, children in alternatives:
        node.append(Possibility(as_probability(prob), list(children)))
    return node


def certain_element(element: XElement) -> PXElement:
    """Convert a plain element subtree into its certain probabilistic form."""
    children = [
        certain_prob(_convert_child(child))
        for child in element.children
        if not (isinstance(child, XText) and not child.value.strip())
    ]
    return PXElement(element.tag, dict(element.attributes), children)


def _convert_child(child: XChild) -> PXChild:
    if isinstance(child, XText):
        return PXText(child.value)
    return certain_element(child)


def certain_document(document: XDocument) -> PXDocument:
    """Wrap a plain document as a (certain) probabilistic document; its root
    probability node has a single possibility holding the root element."""
    return PXDocument(certain_prob(certain_element(document.root)))


def to_certain(node: Union[PXDocument, ProbNode, PXElement, PXText]) -> object:
    """Convert a *certain* probabilistic subtree back to plain XML.

    Raises :class:`ModelError` when any real choice remains.  Documents map
    to :class:`XDocument`, elements to :class:`XElement`, text to
    :class:`XText`; a certain probability node maps to the list of plain
    children of its single possibility.
    """
    if isinstance(node, PXDocument):
        children = to_certain(node.root)
        elements = [c for c in children if isinstance(c, XElement)]
        if len(elements) != 1:
            raise ModelError("certain document must have exactly one root element")
        return XDocument(elements[0])
    if isinstance(node, ProbNode):
        if len(node.possibilities) != 1 or node.possibilities[0].prob != ONE:
            raise ModelError(
                f"probability node ▽{node.uid} is uncertain"
                f" ({len(node.possibilities)} possibilities)"
            )
        return [to_certain(child) for child in node.possibilities[0].children]
    if isinstance(node, PXElement):
        element = XElement(node.tag, dict(node.attributes))
        for prob_child in node.children:
            for plain in to_certain(prob_child):
                element.append(plain)
        return element
    if isinstance(node, PXText):
        return XText(node.value)
    raise ModelError(f"cannot convert {type(node).__name__}")
