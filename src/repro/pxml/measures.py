"""Information-theoretic uncertainty measures for probabilistic XML.

The paper measures uncertainty in nodes and worlds; entropy gives a third,
probability-aware view: how many bits of real ambiguity a document holds.
Because choices at distinct probability nodes are independent, the entropy
of the world distribution decomposes over the tree:

    H(document) = Σ over probability nodes n of  P(n reachable) · H(n)

where ``H(n)`` is the entropy of n's possibility distribution.  This is
exact for *choice* worlds (distinct choices may yield equal documents, so
it upper-bounds the entropy of the distribution over distinct documents —
the same caveat as the paper's world counts).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from fractions import Fraction
from typing import Union

from ..probability import ONE
from .model import PXDocument, PXElement, PXText, Possibility, ProbNode
from .stats import tree_stats


def _entropy_bits(probabilities: list[Fraction]) -> float:
    total = 0.0
    for prob in probabilities:
        if prob > 0:
            value = float(prob)
            total -= value * math.log2(value)
    return total


@dataclass(frozen=True)
class UncertaintyProfile:
    """A document's uncertainty, three ways."""

    nodes: int              # the paper's preferred scalability measure
    worlds: int             # the paper's "deceiving" measure
    entropy_bits: float     # probability-aware ambiguity
    choice_points: int

    def summary(self) -> str:
        return (
            f"{self.nodes:,} nodes, {self.worlds:,} worlds,"
            f" {self.entropy_bits:.2f} bits over {self.choice_points} choices"
        )


def _entropy_prob(node: ProbNode, reach: Fraction) -> float:
    total = float(reach) * _entropy_bits([p.prob for p in node.possibilities])
    for possibility in node.possibilities:
        branch_reach = reach * possibility.prob
        for child in possibility.children:
            if isinstance(child, PXElement):
                total += _entropy_element(child, branch_reach)
    return total


def _entropy_element(element: PXElement, reach: Fraction) -> float:
    return sum(_entropy_prob(child, reach) for child in element.children)


def world_entropy(document: Union[PXDocument, ProbNode]) -> float:
    """Entropy (bits) of the choice-world distribution.

    >>> from repro.pxml.build import certain_prob, choice_prob
    >>> from repro.pxml.model import PXDocument, PXElement, PXText
    >>> fifty_fifty = choice_prob([("1/2", [PXText("a")]), ("1/2", [PXText("b")])])
    >>> doc = PXDocument(certain_prob(PXElement("r", children=[fifty_fifty])))
    >>> world_entropy(doc)
    1.0
    """
    root = document.root if isinstance(document, PXDocument) else document
    return _entropy_prob(root, ONE)


def uncertainty_profile(document: PXDocument) -> UncertaintyProfile:
    """All three uncertainty views at once."""
    stats = tree_stats(document)
    return UncertaintyProfile(
        nodes=stats.total,
        worlds=stats.world_count,
        entropy_bits=world_entropy(document),
        choice_points=stats.choice_points,
    )
