"""Monte-Carlo sampling of possible worlds.

When a document holds too many worlds to enumerate, queries and quality
measures can be estimated from samples.  Sampling walks the tree once per
world, drawing one possibility at every reachable probability node, so a
sample costs O(size of the sampled world).
"""

from __future__ import annotations

import random
from fractions import Fraction
from typing import Iterator, Optional

from ..probability import ONE
from ..xmlkit.nodes import XChild, XDocument, XElement, XText
from ..errors import ModelError
from .model import PXDocument, PXElement, PXText, Possibility, ProbNode
from .worlds import World


def _draw(node: ProbNode, rng: random.Random) -> tuple[int, Possibility]:
    roll = Fraction(rng.random()).limit_denominator(10**12)
    cumulative = Fraction(0)
    for index, possibility in enumerate(node.possibilities):
        cumulative += possibility.prob
        if roll < cumulative:
            return index, possibility
    return len(node.possibilities) - 1, node.possibilities[-1]


def _sample_prob(node: ProbNode, rng: random.Random, prob_acc: list[Fraction]) -> list[XChild]:
    _, possibility = _draw(node, rng)
    prob_acc[0] *= possibility.prob
    children: list[XChild] = []
    for child in possibility.children:
        if isinstance(child, PXText):
            children.append(XText(child.value))
        else:
            children.append(_sample_element(child, rng, prob_acc))
    return children


def _sample_element(
    element: PXElement, rng: random.Random, prob_acc: list[Fraction]
) -> XElement:
    result = XElement(element.tag, dict(element.attributes))
    for prob_child in element.children:
        for child in _sample_prob(prob_child, rng, prob_acc):
            result.append(child)
    return result


def sample_world(document: PXDocument, rng: Optional[random.Random] = None) -> World:
    """Draw one world with probability proportional to its likelihood."""
    rng = rng or random.Random()
    prob_acc = [ONE]
    children = _sample_prob(document.root, rng, prob_acc)
    elements = [child for child in children if isinstance(child, XElement)]
    if len(elements) != 1:
        raise ModelError("a root possibility must expand to exactly one element")
    return World(XDocument(elements[0]), prob_acc[0])


def sample_worlds(
    document: PXDocument, count: int, *, seed: Optional[int] = None
) -> Iterator[World]:
    """Draw ``count`` independent worlds (deterministic under ``seed``)."""
    rng = random.Random(seed)
    for _ in range(count):
        yield sample_world(document, rng)
