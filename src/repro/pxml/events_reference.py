"""The pre-PR-4 probability kernel, kept as a differential oracle.

:func:`expansion_probability` is the exact Shannon-expansion algorithm the
repository shipped through PR 3: recursive conditioning on the most
frequently mentioned variable, memoized on the canonical event key, with
a full-tree rescan per recursion step to collect variables and occurrence
counts (the costs the PR-4 kernel eliminates).  It is *semantically*
identical to :func:`repro.pxml.events.event_probability` — the test suite
asserts Fraction-identical results on randomized events, and
``benchmarks/bench_event_kernel.py`` uses it as the speedup baseline.

Being recursive, it inherits the old limitations on purpose: events
nested deeper than Python's recursion limit raise ``RecursionError``, and
OR-of-independent-conjunction shapes pay the full expansion.  Do not use
it outside tests and benchmarks.
"""

from __future__ import annotations

from fractions import Fraction
from typing import Optional

from ..errors import ProbabilityError
from ..probability import ONE, ZERO
from .events import And, Event, FALSE_EVENT, Lit, Not, Or, TRUE_EVENT
from .model import ProbNode

__all__ = ["expansion_probability"]


def _collect_nodes(event: Event, registry: dict[int, ProbNode]) -> None:
    if isinstance(event, Lit):
        registry.setdefault(event.node.uid, event.node)
    elif isinstance(event, Not):
        _collect_nodes(event.operand, registry)
    elif isinstance(event, (And, Or)):
        for op in event.operands:
            _collect_nodes(op, registry)


def _count_occurrences(event: Event, counts: dict[int, int]) -> None:
    if isinstance(event, Lit):
        counts[event.node.uid] = counts.get(event.node.uid, 0) + 1
    elif isinstance(event, Not):
        _count_occurrences(event.operand, counts)
    elif isinstance(event, (And, Or)):
        for op in event.operands:
            _count_occurrences(op, counts)


def _key_of(event: Event, keys: dict[Event, tuple]) -> tuple:
    """Per-run canonical-key cache, standing in for the lazy per-node
    ``_key`` attribute the PR-3 event classes carried (events are interned
    now, so an identity-keyed dict is an exact equivalent)."""
    key = keys.get(event)
    if key is None:
        key = event.key()
        keys[event] = key
    return key


def expansion_probability(
    event: Event,
    *,
    _memo: Optional[dict[tuple, Fraction]] = None,
    _keys: Optional[dict[Event, tuple]] = None,
) -> Fraction:
    """Exact probability by pure recursive Shannon expansion (the PR-3
    kernel): condition on the most frequently mentioned variable (ties by
    uid), recurse on each possibility, combine with that possibility's
    probability.  Memoized on the canonical event key."""
    if event is TRUE_EVENT:
        return ONE
    if event is FALSE_EVENT:
        return ZERO
    memo = _memo if _memo is not None else {}
    keys = _keys if _keys is not None else {}
    key = _key_of(event, keys)
    cached = memo.get(key)
    if cached is not None:
        return cached

    registry: dict[int, ProbNode] = {}
    _collect_nodes(event, registry)
    if not registry:
        raise ProbabilityError(f"non-constant event without variables: {event!r}")
    counts: dict[int, int] = {}
    _count_occurrences(event, counts)
    uid = max(registry, key=lambda candidate: (counts.get(candidate, 0), -candidate))
    node = registry[uid]
    total = ZERO
    for index, possibility in enumerate(node.possibilities):
        if possibility.prob == 0:
            continue
        conditioned = event.assign(uid, index)
        total += possibility.prob * expansion_probability(
            conditioned, _memo=memo, _keys=keys
        )
    memo[key] = total
    return total
