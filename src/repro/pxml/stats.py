"""Uncertainty and size metrics for probabilistic trees.

The paper (§V) argues that the number of *nodes* used to represent the
possible worlds is the honest scalability measure (world counts grow
exponentially in the number of independent choices and therefore
"deceive").  Table I and Figure 5 are therefore node-count experiments;
:func:`tree_stats` produces everything those benchmarks report.
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction
from typing import Union

from ..probability import ONE
from .model import PXDocument, PXElement, PXText, Possibility, ProbNode
from .worlds import world_count

AnyPX = Union[PXDocument, ProbNode, Possibility, PXElement, PXText]


@dataclass(frozen=True)
class NodeStats:
    """Node census of a probabilistic tree."""

    probability_nodes: int
    possibility_nodes: int
    element_nodes: int
    text_nodes: int
    choice_points: int        # probability nodes with >1 possibility
    max_branching: int        # largest possibility count at one node
    world_count: int          # exact number of (choice) worlds

    @property
    def total(self) -> int:
        """Total node count — the paper's scalability measure."""
        return (
            self.probability_nodes
            + self.possibility_nodes
            + self.element_nodes
            + self.text_nodes
        )

    @property
    def regular_nodes(self) -> int:
        return self.element_nodes + self.text_nodes

    def summary(self) -> str:
        return (
            f"{self.total} nodes"
            f" ({self.probability_nodes}▽ {self.possibility_nodes}○"
            f" {self.element_nodes}elem {self.text_nodes}text),"
            f" {self.choice_points} choice points,"
            f" {self.world_count} worlds"
        )


def node_count(node: AnyPX) -> int:
    """Total number of nodes (probability + possibility + regular)."""
    if isinstance(node, PXDocument):
        return node.root.node_count()
    return node.node_count()


def _census(node: AnyPX, counts: list[int]) -> None:
    # counts = [prob, poss, elem, text, choice_points, max_branching]
    if isinstance(node, PXDocument):
        _census(node.root, counts)
    elif isinstance(node, ProbNode):
        counts[0] += 1
        branching = len(node.possibilities)
        if branching > 1:
            counts[4] += 1
        counts[5] = max(counts[5], branching)
        for possibility in node.possibilities:
            _census(possibility, counts)
    elif isinstance(node, Possibility):
        counts[1] += 1
        for child in node.children:
            _census(child, counts)
    elif isinstance(node, PXElement):
        counts[2] += 1
        for child in node.children:
            _census(child, counts)
    elif isinstance(node, PXText):
        counts[3] += 1
    else:
        raise TypeError(f"cannot census {type(node).__name__}")


def tree_stats(node: AnyPX) -> NodeStats:
    """Full census of a probabilistic tree.

    >>> from repro.pxml import certain_document
    >>> from repro.xmlkit import parse_document
    >>> stats = tree_stats(certain_document(parse_document("<a><b>x</b></a>")))
    >>> (stats.total, stats.world_count)
    (9, 1)
    """
    counts = [0, 0, 0, 0, 0, 0]
    _census(node, counts)
    worlds = world_count(node if not isinstance(node, Possibility) else node)
    return NodeStats(
        probability_nodes=counts[0],
        possibility_nodes=counts[1],
        element_nodes=counts[2],
        text_nodes=counts[3],
        choice_points=counts[4],
        max_branching=counts[5],
        world_count=worlds,
    )


def expected_world_size(node: AnyPX) -> Fraction:
    """Expected number of plain-XML nodes of a random world.

    Computed bottom-up in one pass: E[size of a probability node's
    expansion] = Σᵢ pᵢ · E[size of possibility i], elements add 1 plus the
    sum of their children's expectations.
    """
    if isinstance(node, PXDocument):
        return expected_world_size(node.root)
    if isinstance(node, PXText):
        return Fraction(1)
    if isinstance(node, PXElement):
        return Fraction(1) + sum(
            (expected_world_size(child) for child in node.children), Fraction(0)
        )
    if isinstance(node, Possibility):
        return sum(
            (expected_world_size(child) for child in node.children), Fraction(0)
        )
    if isinstance(node, ProbNode):
        return sum(
            (p.prob * expected_world_size(p) for p in node.possibilities),
            Fraction(0),
        )
    raise TypeError(f"cannot size {type(node).__name__}")
