"""Top-down component-factored compilation of event-pricing plans.

:func:`repro.pxml.events.event_probability` is bottom-up: every
AND/OR it visits is re-partitioned into connected components *at
evaluation time*, on every Shannon expansion step.  The partition is
pure structure — it depends only on which variables the operands
mention, something the query engine already knew when it built the
event.  This module hoists that discovery out of the evaluation loop:

* :func:`compile_event` walks an event **once** (worklist, no
  recursion) and emits a :class:`CompiledEvent` — a pricing plan whose
  shape *is* the independence structure.  Products/coproducts hold one
  part per connected component (axis steps over disjoint subtrees never
  enter the same Shannon expansion); a single-component residual
  becomes an **atom**, priced by the kernel (so Shannon expansion still
  happens exactly where it is unavoidable, and only there).  Compiled
  plans are interned weakly by the source event's digest, like events
  themselves.
* :func:`compiled_probability` evaluates a plan, writing every
  non-constant node's probability into the same digest-keyed memo the
  kernel uses — the two paths share one table and are interchangeable
  entry by entry.  Results are Fraction-identical to
  :func:`~repro.pxml.events.event_probability` and to the
  :mod:`repro.pxml.events_reference` oracle (differential-tested).
* :class:`LiteralProbabilityTable` — the **cross-document** row store
  integration-time pricing shares through
  :class:`~repro.pxml.events_cache.EventProbabilityCache`.  Literal
  rows are keyed ``(node uid, possibility index)`` — uids are globally
  unique and never reused, so rows from different documents can never
  collide; they are dropped per document by
  :meth:`~LiteralProbabilityTable.invalidate_document` (wired into
  :func:`repro.pxml.events_cache.invalidate`).  Product rows are keyed
  by the *values* of their factors — pure arithmetic, document-
  independent, never stale — so pricing one compiled plan across N
  documents of a dataspace reuses the small-conjunction work instead of
  re-deriving it per document.  The table is lock-protected: the
  serving tier's fan-out threads one instance through its bounded pool.
"""

from __future__ import annotations

import weakref
from fractions import Fraction
from threading import Lock
from typing import Iterator, Optional, Sequence

from ..probability import ONE, ZERO
from .events import (
    And,
    Event,
    FALSE_EVENT,
    Lit,
    Not,
    TRUE_EVENT,
    all_of,
    any_of,
    event_probability,
    independent_components,
    product_of,
)
from .model import PXDocument

__all__ = [
    "C_ATOM",
    "C_COPROD",
    "C_FALSE",
    "C_LIT",
    "C_NOT",
    "C_PROD",
    "C_TRUE",
    "CompiledEvent",
    "DEFAULT_MAX_LITERAL_ROWS",
    "DEFAULT_MAX_PRODUCT_ROWS",
    "LiteralProbabilityTable",
    "compile_event",
    "compiled_probability",
    "iter_compiled",
    "shared_literal_table",
]

#: Compiled plan kinds.  ``C_ATOM`` is a single-connected-component
#: residual: every variable inside transitively shares an operand with
#: every other, so no factoring applies and the kernel's Shannon
#: machinery (with its exact complement/independence decompositions on
#: the *conditioned* sub-events) is the right evaluator.
C_TRUE, C_FALSE, C_LIT, C_NOT, C_PROD, C_COPROD, C_ATOM = range(7)

_KIND_NAMES = ("TRUE", "FALSE", "LIT", "NOT", "PROD", "COPROD", "ATOM")


class CompiledEvent:
    """One node of a component-factored pricing plan.

    ``source`` is the event this node prices (its ``digest`` is the memo
    key — the *same* key the bottom-up kernel would use, so compiled and
    uncompiled pricing share one table).  ``parts`` are the sub-plans:
    one per independent component for ``C_PROD``/``C_COPROD`` (their
    sources mention pairwise-disjoint variable sets — the invariant the
    test suite pins), the single negated plan for ``C_NOT``, empty for
    leaves.
    """

    __slots__ = ("kind", "source", "parts", "__weakref__")

    kind: int
    source: Event
    parts: tuple["CompiledEvent", ...]

    def __init__(
        self, kind: int, source: Event, parts: tuple["CompiledEvent", ...]
    ) -> None:
        self.kind = kind
        self.source = source
        self.parts = parts

    def __repr__(self) -> str:
        return (
            f"CompiledEvent({_KIND_NAMES[self.kind]},"
            f" vars={len(self.source.vars)}, parts={len(self.parts)})"
        )


_COMPILED_TRUE = CompiledEvent(C_TRUE, TRUE_EVENT, ())
_COMPILED_FALSE = CompiledEvent(C_FALSE, FALSE_EVENT, ())

#: source digest -> its compiled plan, weakly (plans die with their
#: last external reference, exactly like interned events).
_COMPILED: "weakref.WeakValueDictionary[bytes, CompiledEvent]" = (
    weakref.WeakValueDictionary()
)


def compile_event(event: Event) -> CompiledEvent:
    """Compile ``event`` into a component-factored pricing plan.

    Worklist-driven post-order (no recursion).  At every AND/OR the
    operands are partitioned by
    :func:`~repro.pxml.events.independent_components` **once**:

    * several components → a product (AND) / coproduct (OR) whose parts
      are the compiled per-component conjunctions/disjunctions —
      compilation continues *through* each component, so nested
      alternation keeps factoring;
    * a single component → an atom: the event is genuinely entangled
      and is left to the kernel's Shannon expansion.

    Compiling is idempotent and cheap on re-entry: plans are interned by
    source digest, and shared substructure compiles once.
    """
    if event is TRUE_EVENT:
        return _COMPILED_TRUE
    if event is FALSE_EVENT:
        return _COMPILED_FALSE
    done: dict[bytes, CompiledEvent] = {}
    stack: list[tuple[Event, Optional[tuple[Event, ...]]]] = [(event, None)]
    while stack:
        current, children = stack.pop()
        digest = current.digest
        if digest in done:
            continue
        interned = _COMPILED.get(digest)
        if interned is not None:
            done[digest] = interned
            continue
        if children is None:
            if isinstance(current, Lit):
                compiled = CompiledEvent(C_LIT, current, ())
                _COMPILED[digest] = done[digest] = compiled
                continue
            if isinstance(current, Not):
                children = (current.operand,)
            else:
                components = independent_components(current.operands)
                if len(components) == 1:
                    compiled = CompiledEvent(C_ATOM, current, ())
                    _COMPILED[digest] = done[digest] = compiled
                    continue
                rebuild = all_of if isinstance(current, And) else any_of
                children = tuple(rebuild(group) for group in components)
            stack.append((current, children))
            for child in children:
                if child.digest not in done:
                    stack.append((child, None))
        else:
            if isinstance(current, Not):
                kind = C_NOT
            elif isinstance(current, And):
                kind = C_PROD
            else:
                kind = C_COPROD
            compiled = CompiledEvent(
                kind,
                current,
                tuple(done[child.digest] for child in children),
            )
            _COMPILED[digest] = done[digest] = compiled
    return done[event.digest]


def iter_compiled(compiled: CompiledEvent) -> Iterator[CompiledEvent]:
    """Every node of a compiled plan, each distinct node once
    (pre-order worklist; shared sub-plans are not repeated)."""
    seen: set[int] = set()
    stack: list[CompiledEvent] = [compiled]
    while stack:
        current = stack.pop()
        if id(current) in seen:
            continue
        seen.add(id(current))
        yield current
        stack.extend(current.parts)


def compiled_probability(
    compiled: CompiledEvent,
    *,
    memo: Optional[dict[bytes, Fraction]] = None,
    table: Optional["LiteralProbabilityTable"] = None,
) -> Fraction:
    """Exact probability of a compiled plan's source event.

    Worklist-driven post-order.  ``memo`` is the digest-keyed table
    shared with :func:`~repro.pxml.events.event_probability` — every
    plan node's probability lands under its source digest, and atoms
    delegate to the kernel *with the same table*, so compiled and
    bottom-up pricing interleave freely over one memo.  ``table`` is the
    optional cross-document :class:`LiteralProbabilityTable`: literal
    rows resolve (and populate) it, and the product/coproduct combine
    steps reuse its value-keyed small-conjunction rows.

    Fraction-identical to pricing ``compiled.source`` bottom-up.
    """
    if compiled.kind == C_TRUE:
        return ONE
    if compiled.kind == C_FALSE:
        return ZERO
    if memo is None:
        memo = {}
    cached = memo.get(compiled.source.digest)
    if cached is not None:
        return cached
    stack: list[tuple[CompiledEvent, bool]] = [(compiled, False)]
    while stack:
        current, ready = stack.pop()
        digest = current.source.digest
        if digest in memo:
            continue
        kind = current.kind
        if not ready:
            if kind == C_LIT:
                source = current.source
                assert isinstance(source, Lit)
                if table is not None:
                    memo[digest] = table.literal(source)
                else:
                    memo[digest] = source.node.possibilities[source.index].prob
                continue
            if kind == C_ATOM:
                # Single connected component: the kernel's Shannon
                # expansion, sharing this memo (and so this call's
                # frontier) entry for entry.
                memo[digest] = event_probability(current.source, _memo=memo)
                continue
            if (
                kind == C_PROD
                and table is not None
                and len(current.parts) <= _MAX_PRODUCT_FACTORS
                and all(part.kind == C_LIT for part in current.parts)
            ):
                # The canonical small conjunction of independent
                # literals: one identity-keyed row replaces pricing
                # every literal plus the combine step.
                sources = []
                for part in current.parts:
                    source = part.source
                    assert isinstance(source, Lit)
                    sources.append(source)
                memo[digest] = table.conjunction(sources)
                continue
            stack.append((current, True))
            for part in current.parts:
                if part.source.digest not in memo:
                    stack.append((part, False))
        elif kind == C_NOT:
            memo[digest] = ONE - memo[current.parts[0].source.digest]
        elif kind == C_PROD:
            factors = [memo[part.source.digest] for part in current.parts]
            memo[digest] = (
                table.product(factors) if table is not None
                else product_of(factors)
            )
        else:  # C_COPROD
            complements = [
                ONE - memo[part.source.digest] for part in current.parts
            ]
            miss = (
                table.product(complements) if table is not None
                else product_of(complements)
            )
            memo[digest] = ONE - miss
    return memo[compiled.source.digest]


# -- the cross-document literal/product row store -------------------------------

#: Default bound on literal rows.  A row is a 2-int key plus a Fraction;
#: eviction only costs a re-read of the node attribute, never
#: correctness.
DEFAULT_MAX_LITERAL_ROWS = 500_000

#: Default bound on value-keyed product rows (LRU).
DEFAULT_MAX_PRODUCT_ROWS = 100_000

#: Products with more factors than this are computed directly — the
#: value key would cost more to build than the batched multiply saves.
_MAX_PRODUCT_FACTORS = 16


class LiteralProbabilityTable:
    """Cross-document probability rows shared by compiled pricing.

    Three row families with different lifetimes:

    * **literal rows** — ``(node uid, possibility index) → Fraction``.
      Uids are globally unique and never reused
      (:class:`~repro.pxml.model.ProbNode`), so one table serves any
      number of documents without collisions; rows belonging to a
      mutated document are dropped by :meth:`invalidate_document`.
    * **conjunction rows** — ``((uid, index), …) → Fraction`` for a
      small conjunction of literals, keyed by the literals'
      *identities* in plan order.  A warm re-pricing of a compiled
      product-of-literals is a single lookup; rows mentioning a
      mutated document's uids are dropped by
      :meth:`invalidate_document`.  A conjunction *miss* resolves
      through the product rows, so the value-level reuse below still
      applies on first contact.
    * **product rows** — ``sorted((numerator, denominator), …) →
      Fraction``.  Keyed by the factor *values*, they are pure
      arithmetic: document-independent, reusable across the whole
      dataspace, and immune to document mutation (a stale input simply
      produces a different key).  Bounded LRU.

    All access is serialized on an internal lock — the serving tier
    threads one instance through its fan-out pool, so N worker threads
    pricing N documents share (and fill) the same rows.
    """

    __slots__ = (
        "_literals",
        "_conjunctions",
        "_products",
        "_lock",
        "max_literal_rows",
        "max_product_rows",
        "literal_hits",
        "literal_misses",
        "conjunction_hits",
        "conjunction_misses",
        "product_hits",
        "product_misses",
        "evictions",
    )

    def __init__(
        self,
        *,
        max_literal_rows: Optional[int] = DEFAULT_MAX_LITERAL_ROWS,
        max_product_rows: Optional[int] = DEFAULT_MAX_PRODUCT_ROWS,
    ) -> None:
        if max_literal_rows is not None and max_literal_rows <= 0:
            raise ValueError("max_literal_rows must be positive (or None)")
        if max_product_rows is not None and max_product_rows <= 0:
            raise ValueError("max_product_rows must be positive (or None)")
        self._literals: dict[tuple[int, int], Fraction] = {}
        self._conjunctions: dict[tuple[tuple[int, int], ...], Fraction] = {}
        self._products: dict[tuple[tuple[int, int], ...], Fraction] = {}
        self._lock = Lock()
        self.max_literal_rows = max_literal_rows
        self.max_product_rows = max_product_rows
        self.literal_hits = 0
        self.literal_misses = 0
        self.conjunction_hits = 0
        self.conjunction_misses = 0
        self.product_hits = 0
        self.product_misses = 0
        self.evictions = 0

    # -- rows ---------------------------------------------------------------

    def literal(self, literal: Lit) -> Fraction:
        """The probability of ``literal``'s possibility, from the table
        (one attribute read on first use per ``(uid, index)``)."""
        key = (literal.node.uid, literal.index)
        with self._lock:
            row = self._literals.get(key)
            if row is not None:
                self.literal_hits += 1
                # LRU refresh: eviction walks insertion order.
                del self._literals[key]
                self._literals[key] = row
                return row
        value = literal.node.possibilities[literal.index].prob
        with self._lock:
            self.literal_misses += 1
            self._literals[key] = value
            self._evict(self._literals, self.max_literal_rows)
        return value

    def conjunction(self, literals: Sequence[Lit]) -> Fraction:
        """Exact probability of a conjunction of independent
        ``literals`` through the identity-keyed conjunction rows.

        The key is the literals' ``(uid, index)`` pairs in plan order —
        building it touches no Fraction at all, so a warm compiled
        product-of-literals prices in one lookup.  A miss resolves
        through :meth:`product` (value-keyed, cross-document) before
        the identity row is written."""
        key = tuple((entry.node.uid, entry.index) for entry in literals)
        with self._lock:
            row = self._conjunctions.get(key)
            if row is not None:
                self.conjunction_hits += 1
                # LRU refresh: eviction walks insertion order.
                del self._conjunctions[key]
                self._conjunctions[key] = row
                return row
        value = self.product([self.literal(entry) for entry in literals])
        with self._lock:
            self.conjunction_misses += 1
            self._conjunctions[key] = value
            self._evict(self._conjunctions, self.max_product_rows)
        return value

    def product(self, factors: Sequence[Fraction]) -> Fraction:
        """Exact product of ``factors`` through the value-keyed rows.

        Small conjunctions (≤ 16 factors) hit the shared row store —
        the same factor multiset priced for another document resolves
        without multiplying; larger products are computed directly
        (batched, one normalization — see
        :func:`~repro.pxml.events.product_of`)."""
        if len(factors) < 2:
            return factors[0] if factors else ONE
        if len(factors) > _MAX_PRODUCT_FACTORS:
            return product_of(factors)
        key = tuple(sorted(f.as_integer_ratio() for f in factors))
        with self._lock:
            row = self._products.get(key)
            if row is not None:
                self.product_hits += 1
                del self._products[key]
                self._products[key] = row
                return row
        value = product_of(factors)
        with self._lock:
            self.product_misses += 1
            self._products[key] = value
            self._evict(self._products, self.max_product_rows)
        return value

    def _evict(self, rows: dict, bound: Optional[int]) -> None:
        # Caller holds the lock.
        if bound is None:
            return
        while len(rows) > bound:
            del rows[next(iter(rows))]
            self.evictions += 1

    # -- maintenance --------------------------------------------------------

    def invalidate_document(self, document: PXDocument) -> int:
        """Drop the literal rows of ``document``'s choice variables;
        returns how many were dropped.

        Required (alongside :func:`repro.pxml.events_cache.invalidate`,
        which calls it) after mutating the document's probability nodes
        in place — a stale literal row would otherwise keep pricing the
        pre-mutation probability for *every* consumer of the shared
        table.  Product rows are value-keyed and never stale, so they
        survive."""
        uids = {node.uid for node in document.iter_prob_nodes()}
        with self._lock:
            stale = [key for key in self._literals if key[0] in uids]
            for key in stale:
                del self._literals[key]
            stale_conjunctions = [
                key
                for key in self._conjunctions
                if any(uid in uids for uid, _index in key)
            ]
            for key in stale_conjunctions:
                del self._conjunctions[key]
        return len(stale) + len(stale_conjunctions)

    def clear(self) -> None:
        """Drop every row (both families) and reset nothing else."""
        with self._lock:
            self._literals.clear()
            self._conjunctions.clear()
            self._products.clear()

    def __len__(self) -> int:
        with self._lock:
            return (
                len(self._literals)
                + len(self._conjunctions)
                + len(self._products)
            )

    def stats(self) -> dict[str, int]:
        """Counters for benchmarks and diagnostics."""
        with self._lock:
            return {
                "literal_rows": len(self._literals),
                "conjunction_rows": len(self._conjunctions),
                "product_rows": len(self._products),
                "literal_hits": self.literal_hits,
                "literal_misses": self.literal_misses,
                "conjunction_hits": self.conjunction_hits,
                "conjunction_misses": self.conjunction_misses,
                "product_hits": self.product_hits,
                "product_misses": self.product_misses,
                "evictions": self.evictions,
            }

    def __repr__(self) -> str:
        stats = self.stats()
        return (
            f"LiteralProbabilityTable(literals={stats['literal_rows']},"
            f" conjunctions={stats['conjunction_rows']},"
            f" products={stats['product_rows']})"
        )


#: The process-wide default table — what
#: :class:`~repro.pxml.events_cache.EventProbabilityCache` attaches to
#: unless told otherwise, so every engine in the process shares rows.
_SHARED_TABLE = LiteralProbabilityTable()


def shared_literal_table() -> LiteralProbabilityTable:
    """The process-wide shared :class:`LiteralProbabilityTable`."""
    return _SHARED_TABLE
