"""The layered probabilistic XML tree (paper §II).

Layering invariants (checked by :func:`validate_document`):

* the document root is a probability node;
* children of probability nodes are possibility nodes (at least one);
* possibility probabilities lie in (0, 1] and sibling possibilities sum
  to exactly 1;
* children of possibility nodes are regular nodes (elements / text);
* children of element nodes are probability nodes;
* text nodes are leaves.

Every :class:`ProbNode` carries a unique ``uid`` — the identity of the
*choice variable* it represents.  Possible-world semantics: a world picks
one possibility per probability node, independently across nodes; the
world's probability is the product of the picked probabilities over the
nodes that are *reachable* under those picks.
"""

from __future__ import annotations

import itertools
from fractions import Fraction
from typing import Iterator, Optional, Sequence, Union

from ..errors import ModelError
from ..probability import ONE, ProbLike, as_probability

_UID_COUNTER = itertools.count(1)

PXChild = Union["PXElement", "PXText"]


class PXText:
    """A regular text node (leaf)."""

    __slots__ = ("value",)

    def __init__(self, value: str):
        if not isinstance(value, str):
            raise ModelError(f"text value must be str, got {type(value).__name__}")
        self.value = value

    def copy(self) -> "PXText":
        return PXText(self.value)

    def node_count(self) -> int:
        return 1

    def __repr__(self) -> str:
        return f"PXText({self.value!r})"


class PXElement:
    """A regular element node; its children are probability nodes."""

    __slots__ = ("tag", "attributes", "children")

    def __init__(
        self,
        tag: str,
        attributes: Optional[dict[str, str]] = None,
        children: Optional[Sequence["ProbNode"]] = None,
    ):
        if not tag or not isinstance(tag, str):
            raise ModelError(f"invalid element tag: {tag!r}")
        self.tag = tag
        self.attributes: dict[str, str] = dict(attributes or {})
        self.children: list[ProbNode] = []
        for child in children or ():
            self.append(child)

    def append(self, child: "ProbNode") -> "ProbNode":
        if not isinstance(child, ProbNode):
            raise ModelError(
                f"children of elements must be probability nodes,"
                f" got {type(child).__name__} under <{self.tag}>"
            )
        self.children.append(child)
        return child

    def copy(self) -> "PXElement":
        return PXElement(
            self.tag, dict(self.attributes), [child.copy() for child in self.children]
        )

    def node_count(self) -> int:
        return 1 + sum(child.node_count() for child in self.children)

    def iter_prob_nodes(self) -> Iterator["ProbNode"]:
        for child in self.children:
            yield from child.iter_prob_nodes()

    def is_certain(self) -> bool:
        return all(child.is_certain() for child in self.children)

    def __repr__(self) -> str:
        return f"PXElement({self.tag!r}, children={len(self.children)})"


class Possibility:
    """One alternative (○) under a probability node."""

    __slots__ = ("prob", "children")

    def __init__(self, prob: ProbLike, children: Optional[Sequence[PXChild]] = None):
        self.prob: Fraction = as_probability(prob)
        self.children: list[PXChild] = []
        for child in children or ():
            self.append(child)

    def append(self, child: PXChild) -> PXChild:
        if isinstance(child, str):
            child = PXText(child)
        if not isinstance(child, (PXElement, PXText)):
            raise ModelError(
                f"children of possibilities must be regular nodes,"
                f" got {type(child).__name__}"
            )
        self.children.append(child)
        return child

    def copy(self) -> "Possibility":
        clone = Possibility(self.prob)
        clone.children = [child.copy() for child in self.children]
        return clone

    def node_count(self) -> int:
        return 1 + sum(child.node_count() for child in self.children)

    def iter_prob_nodes(self) -> Iterator["ProbNode"]:
        for child in self.children:
            if isinstance(child, PXElement):
                yield from child.iter_prob_nodes()

    def __repr__(self) -> str:
        return f"Possibility(p={self.prob}, children={len(self.children)})"


class ProbNode:
    """A choice point (▽); children are mutually exclusive possibilities.

    Weak-referenceable so the event algebra's uid → node registry
    (:mod:`repro.pxml.events`) can resolve Shannon pivots without keeping
    dead documents alive.
    """

    __slots__ = ("uid", "possibilities", "__weakref__")

    def __init__(self, possibilities: Optional[Sequence[Possibility]] = None):
        self.uid: int = next(_UID_COUNTER)
        self.possibilities: list[Possibility] = []
        for possibility in possibilities or ():
            self.append(possibility)

    def append(self, possibility: Possibility) -> Possibility:
        if not isinstance(possibility, Possibility):
            raise ModelError(
                f"children of probability nodes must be possibilities,"
                f" got {type(possibility).__name__}"
            )
        self.possibilities.append(possibility)
        return possibility

    def copy(self) -> "ProbNode":
        """Deep copy.  The copy is a *new* choice variable (fresh uid)."""
        return ProbNode([possibility.copy() for possibility in self.possibilities])

    def node_count(self) -> int:
        return 1 + sum(p.node_count() for p in self.possibilities)

    def iter_prob_nodes(self) -> Iterator["ProbNode"]:
        """This node and all probability nodes below it, pre-order."""
        yield self
        for possibility in self.possibilities:
            yield from possibility.iter_prob_nodes()

    def is_certain(self) -> bool:
        """True when this subtree admits exactly one world."""
        if len(self.possibilities) != 1 or self.possibilities[0].prob != ONE:
            return False
        return all(
            child.is_certain()
            for child in self.possibilities[0].children
            if isinstance(child, PXElement)
        )

    def total_probability(self) -> Fraction:
        return sum((p.prob for p in self.possibilities), Fraction(0))

    def __repr__(self) -> str:
        return f"ProbNode(uid={self.uid}, possibilities={len(self.possibilities)})"


class PXDocument:
    """A probabilistic XML document, rooted at a probability node.

    In strict form (enforced by :func:`validate_document` with
    ``as_document=True``) every root possibility holds exactly one element,
    so that each possible world is a well-formed XML document.

    Documents are weak-referenceable so that per-document caches (see
    :mod:`repro.pxml.events_cache`) can be garbage-collected with them.
    """

    __slots__ = ("root", "__weakref__")

    def __init__(self, root: ProbNode):
        if not isinstance(root, ProbNode):
            raise ModelError("document root must be a probability node")
        self.root = root

    def copy(self) -> "PXDocument":
        return PXDocument(self.root.copy())

    def node_count(self) -> int:
        return self.root.node_count()

    def iter_prob_nodes(self) -> Iterator[ProbNode]:
        return self.root.iter_prob_nodes()

    def is_certain(self) -> bool:
        return self.root.is_certain()

    def __repr__(self) -> str:
        return f"PXDocument(nodes={self.node_count()})"


# -- validation ---------------------------------------------------------------

def validate_document(
    document: PXDocument | ProbNode, *, as_document: bool = True
) -> None:
    """Check all layering and probability invariants; raise
    :class:`ModelError` on the first violation."""
    root = document.root if isinstance(document, PXDocument) else document
    if as_document:
        for possibility in root.possibilities:
            elements = [c for c in possibility.children if isinstance(c, PXElement)]
            if len(elements) != 1 or len(possibility.children) != 1:
                raise ModelError(
                    "each root possibility must hold exactly one element"
                )
    _validate_prob(root, path="/")


def _validate_prob(node: ProbNode, path: str) -> None:
    if not node.possibilities:
        raise ModelError(f"{path}: probability node without possibilities")
    total = node.total_probability()
    if total != 1:
        raise ModelError(f"{path}: possibilities sum to {total}, expected 1")
    for index, possibility in enumerate(node.possibilities):
        if possibility.prob <= 0:
            raise ModelError(f"{path}[{index}]: non-positive probability")
        for child in possibility.children:
            if isinstance(child, PXElement):
                _validate_element(child, f"{path}[{index}]/{child.tag}")
            elif not isinstance(child, PXText):
                raise ModelError(
                    f"{path}[{index}]: invalid child {type(child).__name__}"
                )


def _validate_element(element: PXElement, path: str) -> None:
    for child in element.children:
        if not isinstance(child, ProbNode):
            raise ModelError(
                f"{path}: element child must be a probability node,"
                f" got {type(child).__name__}"
            )
        _validate_prob(child, f"{path}/▽{child.uid}")


# -- structural equality -------------------------------------------------------

def _yields_top_text(node: ProbNode) -> bool:
    """Whether any possibility of this node has a text child — i.e. the
    node's expansion can contribute a top-level text run."""
    return any(
        isinstance(child, PXText)
        for possibility in node.possibilities
        for child in possibility.children
    )


def _content_keys(children: Sequence[PXChild]) -> tuple:
    """Sorted keys of a possibility's content, with *adjacent* text runs
    merged first — text concatenation order is semantically meaningful
    (it is what worlds see), element order is not."""
    merged: list[tuple] = []
    buffer: list[str] = []
    for child in children:
        if isinstance(child, PXText):
            buffer.append(child.value)
        else:
            if buffer:
                merged.append(("t", "".join(buffer)))
                buffer = []
            merged.append(px_canonical_key(child))
    if buffer:
        merged.append(("t", "".join(buffer)))
    return tuple(sorted(merged))


def px_canonical_key(node: Union[ProbNode, Possibility, PXChild]) -> tuple:
    """Hashable structural key for probabilistic subtrees.

    Sibling *element* order is ignored (consistent with the oracle's
    order-insensitive deep equality); adjacent text runs are merged, then
    compared as units.  The key is *syntactic* — semantically equal trees
    with different factorings get different keys.  Run
    :mod:`repro.pxml.simplify` first when a semantic comparison is needed.
    """
    if isinstance(node, PXText):
        return ("t", node.value)
    if isinstance(node, PXElement):
        child_keys = [px_canonical_key(child) for child in node.children]
        if not any(_yields_top_text(child) for child in node.children):
            # Order matters only when nested expansions can produce text
            # at this level (text runs concatenate in child order); pure
            # element content is order-insensitive, like deep equality.
            child_keys.sort()
        return ("e", node.tag, tuple(sorted(node.attributes.items())), tuple(child_keys))
    if isinstance(node, Possibility):
        return ("o", node.prob, _content_keys(node.children))
    if isinstance(node, ProbNode):
        keys = sorted(px_canonical_key(p) for p in node.possibilities)
        return ("p", tuple(keys))
    raise ModelError(f"cannot key {type(node).__name__}")


def px_deep_equal(
    a: Union[ProbNode, Possibility, PXChild],
    b: Union[ProbNode, Possibility, PXChild],
) -> bool:
    """Structural equality of probabilistic subtrees (order-insensitive)."""
    return px_canonical_key(a) == px_canonical_key(b)
