"""Event algebra over probabilistic-XML choice variables.

Every probability node ▽ is an independent random variable whose outcomes
are its possibility indices; ``Lit(node, index)`` is the event "▽ chose
possibility *index*".  Events are boolean combinations of literals and are
what the query engine computes: "value v appears in the answer" is an OR
over occurrence events, each a conjunction of the choices that make the
occurrence exist and satisfy the query predicate.

**Guardedness contract.** Possible-world semantics only assigns choices to
*reachable* probability nodes.  Event probabilities computed here treat all
variables as always-present and independent, which agrees with world
semantics as long as events are *guarded*: a literal for a node may only
matter in conjunction with the literals that make the node reachable.
Events produced by path traversal (existence events) are guarded by
construction; the test suite cross-checks event probabilities against
world enumeration.

**Hash-consing.** Events are interned: the simplifying constructors
(:func:`lit`, :func:`negate`, :func:`all_of`, :func:`any_of`) return *the*
canonical instance for each structure, so structurally equal events are
identity-equal (``all_of([a, b]) is all_of([b, a])``).  Each node carries,
computed once at construction from its already-built children:

* ``digest`` — a 16-byte canonical-form digest (the intern key and the
  memo key used by :mod:`repro.pxml.events_cache`);
* ``vars`` — the frozenset of choice-variable uids the event mentions;
* ``counts`` — per-variable literal occurrence counts.

This removes every per-recursion full-tree rescan the pre-PR-4 kernel
paid (``key()`` serialization, node collection, occurrence counting) —
what is left of those walks is one dict/bytes merge per *unique* node,
ever.  The intern table is weak: events die when the last external
reference does.  Interning is also safe under free-threaded construction
races — two threads may briefly build twin instances for one digest, but
every memo is keyed by digest, never by identity, so twins only cost a
little sharing, never correctness.

**Probability kernel.** :func:`event_probability` is exact
(:class:`fractions.Fraction`) and worklist-driven (no Python recursion,
so events tens of thousands of literals deep price fine).  Before falling
back to Shannon expansion it applies two exact decompositions:

* complement: ``P(¬e) = 1 − P(e)``;
* independence: operands of an AND/OR are partitioned into connected
  components by shared variables; disjoint components are independent, so
  ``P(∧ parts) = ∏ P(part)`` and ``P(∨ parts) = 1 − ∏ (1 − P(part))``.

The common query shape — an OR of occurrence conjunctions over disjoint
subtrees — collapses from exponential expansion to a linear product.
Only a single connected component is ever Shannon-expanded, conditioning
on the most frequently mentioned variable (ties by uid) exactly as
before; results are Fraction-identical to the expansion-only kernel
(kept as :mod:`repro.pxml.events_reference` and differential-tested).
"""

from __future__ import annotations

import weakref
from fractions import Fraction
from hashlib import blake2b
from math import gcd
from typing import Iterable, Optional, Sequence

from ..errors import ProbabilityError
from ..probability import ONE, ZERO
from .model import ProbNode

#: digest -> the canonical instance for that structure (weak: an event
#: lives exactly as long as someone outside the table references it).
_INTERN: "weakref.WeakValueDictionary[bytes, Event]" = weakref.WeakValueDictionary()

#: uid -> its ProbNode, weakly.  Every event strongly references the
#: nodes of its literals, so any uid found in a live event's ``counts``
#: resolves here; entries die with the last event (and node).
_NODES: "weakref.WeakValueDictionary[int, ProbNode]" = weakref.WeakValueDictionary()

_EMPTY_COUNTS: dict[int, int] = {}
_NO_VARS: frozenset[int] = frozenset()


def _digest16(*parts: bytes) -> bytes:
    h = blake2b(digest_size=16)
    for part in parts:
        h.update(part)
    return h.digest()


# The canonical digest formula of each node kind lives here, once: the
# interning constructors probe with it and pass the result into
# ``__init__``, so the intern key and the digest stored on the node
# cannot drift (and cold construction hashes exactly once).

def _lit_digest(uid: int, index: int) -> bytes:
    return _digest16(b"L", f"{uid}:{index}".encode())


def _not_digest(operand_digest: bytes) -> bytes:
    return _digest16(b"N", operand_digest)


def _and_digest(operand_digests: Iterable[bytes]) -> bytes:
    return _digest16(b"A", *sorted(operand_digests))


def _or_digest(operand_digests: Iterable[bytes]) -> bytes:
    return _digest16(b"O", *sorted(operand_digests))


class Event:
    """Base class for events.  Use the module-level constructors
    (:func:`lit`, :func:`all_of`, :func:`any_of`, :func:`none_of`) rather
    than instantiating subclasses directly — they simplify on the fly and
    intern the result (structural equality becomes ``is``).

    Invariant: ``digest``, ``vars`` and ``counts`` are set once in
    ``__init__`` and never mutated; ``vars`` is always exactly
    ``frozenset(counts)``.
    """

    __slots__ = ("digest", "vars", "counts", "__weakref__")

    digest: bytes
    vars: frozenset[int]
    counts: dict[int, int]

    def key(self) -> tuple[object, ...]:
        """Canonical structural key (the pre-PR-4 memo key format), built
        iteratively.  Kept for diagnostics and differential tests — the
        kernel and the caches key on :attr:`digest` instead."""
        return _key_of(self)

    def variables(self) -> frozenset[int]:
        """uids of the probability nodes this event mentions (cached at
        construction; treat as read-only)."""
        return self.vars

    def assign(self, uid: int, index: int) -> "Event":
        """The event conditioned on variable ``uid`` choosing ``index``."""
        return _assign(self, uid, index)

    def evaluate(self, assignment: dict[int, int]) -> bool:
        """Truth value under a complete assignment (uid -> index)."""
        return _evaluate(self, assignment)

    # Convenient operators -------------------------------------------------

    def __and__(self, other: "Event") -> "Event":
        return all_of([self, other])

    def __or__(self, other: "Event") -> "Event":
        return any_of([self, other])

    def __invert__(self) -> "Event":
        return negate(self)


class _TrueEvent(Event):
    __slots__ = ()

    def __init__(self) -> None:
        self.digest = b"T"
        self.vars = _NO_VARS
        self.counts = _EMPTY_COUNTS

    def key(self) -> tuple[object, ...]:
        return ("T",)

    def assign(self, uid: int, index: int) -> Event:
        return self

    def evaluate(self, assignment: dict[int, int]) -> bool:
        return True

    def __repr__(self) -> str:
        return "TRUE"


class _FalseEvent(Event):
    __slots__ = ()

    def __init__(self) -> None:
        self.digest = b"F"
        self.vars = _NO_VARS
        self.counts = _EMPTY_COUNTS

    def key(self) -> tuple[object, ...]:
        return ("F",)

    def assign(self, uid: int, index: int) -> Event:
        return self

    def evaluate(self, assignment: dict[int, int]) -> bool:
        return False

    def __repr__(self) -> str:
        return "FALSE"


TRUE_EVENT = _TrueEvent()
FALSE_EVENT = _FalseEvent()


class Lit(Event):
    """The event "probability node ``node`` chose possibility ``index``"."""

    __slots__ = ("node", "index")

    def __init__(
        self, node: ProbNode, index: int, digest: Optional[bytes] = None
    ) -> None:
        if not 0 <= index < len(node.possibilities):
            raise ProbabilityError(
                f"possibility index {index} out of range for ▽{node.uid}"
            )
        self.node = node
        self.index = index
        self.digest = digest if digest is not None else _lit_digest(node.uid, index)
        self.vars = frozenset((node.uid,))
        self.counts = {node.uid: 1}
        # Registered here (not in lit()) so even directly-constructed
        # literals resolve their pivot node.
        _NODES[node.uid] = node

    def key(self) -> tuple[object, ...]:
        return ("L", self.node.uid, self.index)

    def assign(self, uid: int, index: int) -> Event:
        if uid != self.node.uid:
            return self
        return TRUE_EVENT if index == self.index else FALSE_EVENT

    def evaluate(self, assignment: dict[int, int]) -> bool:
        return assignment.get(self.node.uid) == self.index

    def __repr__(self) -> str:
        return f"(▽{self.node.uid}={self.index})"


class Not(Event):
    __slots__ = ("operand",)

    def __init__(self, operand: Event, digest: Optional[bytes] = None) -> None:
        self.operand = operand
        self.digest = digest if digest is not None else _not_digest(operand.digest)
        self.vars = operand.vars
        self.counts = operand.counts  # same literals — share, don't copy

    def __repr__(self) -> str:
        return f"¬{self.operand!r}"


def _merge_counts(operands: tuple[Event, ...]) -> dict[int, int]:
    merged: dict[int, int] = {}
    get = merged.get
    for op in operands:
        for uid, count in op.counts.items():
            merged[uid] = get(uid, 0) + count
    return merged


class And(Event):
    __slots__ = ("operands",)

    def __init__(
        self, operands: tuple[Event, ...], digest: Optional[bytes] = None
    ) -> None:
        self.operands = operands
        self.digest = (
            digest
            if digest is not None
            else _and_digest(op.digest for op in operands)
        )
        self.counts = _merge_counts(operands)
        self.vars = frozenset(self.counts)

    def __repr__(self) -> str:
        return "(" + " ∧ ".join(repr(op) for op in self.operands) + ")"


class Or(Event):
    __slots__ = ("operands",)

    def __init__(
        self, operands: tuple[Event, ...], digest: Optional[bytes] = None
    ) -> None:
        self.operands = operands
        self.digest = (
            digest
            if digest is not None
            else _or_digest(op.digest for op in operands)
        )
        self.counts = _merge_counts(operands)
        self.vars = frozenset(self.counts)

    def __repr__(self) -> str:
        return "(" + " ∨ ".join(repr(op) for op in self.operands) + ")"


# -- simplifying, interning constructors ---------------------------------------

def lit(node: ProbNode, index: int) -> Event:
    """Literal constructor.  A literal on a single-possibility node is
    simply TRUE (the choice is forced)."""
    if len(node.possibilities) == 1:
        return TRUE_EVENT
    digest = _lit_digest(node.uid, index)
    event = _INTERN.get(digest)
    if event is None:
        # An out-of-range index can never be interned (construction
        # raises), so the probe above misses and Lit validates here.
        event = Lit(node, index, digest)
        _INTERN[digest] = event
    return event


def negate(event: Event) -> Event:
    """``not event``, interned: constants flip, double negation unwraps
    (so ``negate(negate(e)) is e``), everything else wraps in
    :class:`Not`."""
    if event is TRUE_EVENT:
        return FALSE_EVENT
    if event is FALSE_EVENT:
        return TRUE_EVENT
    if isinstance(event, Not):
        return event.operand
    digest = _not_digest(event.digest)
    negated = _INTERN.get(digest)
    if negated is None:
        negated = Not(event, digest)
        _INTERN[digest] = negated
    return negated


def all_of(events: Iterable[Event]) -> Event:
    """Conjunction with flattening, deduplication and contradiction
    detection (a node cannot choose two different possibilities)."""
    flat: list[Event] = []
    seen: set[bytes] = set()
    chosen: dict[int, int] = {}
    for event in events:
        if event is FALSE_EVENT:
            return FALSE_EVENT
        if event is TRUE_EVENT:
            continue
        parts = event.operands if isinstance(event, And) else (event,)
        for part in parts:
            if part is FALSE_EVENT:
                return FALSE_EVENT
            if part is TRUE_EVENT:
                continue
            if isinstance(part, Lit):
                uid = part.node.uid
                if uid in chosen and chosen[uid] != part.index:
                    return FALSE_EVENT
                chosen[uid] = part.index
            digest = part.digest
            if digest not in seen:
                seen.add(digest)
                flat.append(part)
    if not flat:
        return TRUE_EVENT
    if len(flat) == 1:
        return flat[0]
    digest = _and_digest(seen)
    event = _INTERN.get(digest)
    if event is None:
        event = And(tuple(flat), digest)
        _INTERN[digest] = event
    return event


def any_of(events: Iterable[Event]) -> Event:
    """Disjunction with flattening and deduplication."""
    flat: list[Event] = []
    seen: set[bytes] = set()
    for event in events:
        if event is TRUE_EVENT:
            return TRUE_EVENT
        if event is FALSE_EVENT:
            continue
        parts = event.operands if isinstance(event, Or) else (event,)
        for part in parts:
            if part is TRUE_EVENT:
                return TRUE_EVENT
            if part is FALSE_EVENT:
                continue
            digest = part.digest
            if digest not in seen:
                seen.add(digest)
                flat.append(part)
    if not flat:
        return FALSE_EVENT
    if len(flat) == 1:
        return flat[0]
    digest = _or_digest(seen)
    event = _INTERN.get(digest)
    if event is None:
        event = Or(tuple(flat), digest)
        _INTERN[digest] = event
    return event


def none_of(events: Iterable[Event]) -> Event:
    """¬(e₁ ∨ e₂ ∨ …)."""
    return negate(any_of(events))


def interned_count() -> int:
    """Number of live interned events (diagnostics)."""
    return len(_INTERN)


# -- iterative structural walks ------------------------------------------------

def _operands_of(event: Event) -> tuple[Event, ...]:
    if isinstance(event, Not):
        return (event.operand,)
    assert isinstance(event, (And, Or))  # constants/literals never reach here
    return event.operands


def _key_of(event: Event) -> tuple[object, ...]:
    """Post-order iterative construction of the legacy canonical key."""
    memo: dict[bytes, tuple[object, ...]] = {}
    stack: list[tuple[Event, bool]] = [(event, False)]
    while stack:
        current, ready = stack.pop()
        digest = current.digest
        if digest in memo:
            continue
        if isinstance(current, (Lit, _TrueEvent, _FalseEvent)):
            memo[digest] = current.key()
            continue
        operands = _operands_of(current)
        if not ready:
            stack.append((current, True))
            stack.extend(
                (op, False) for op in operands if op.digest not in memo
            )
        elif isinstance(current, Not):
            memo[digest] = ("N", memo[operands[0].digest])
        else:
            tag = "A" if isinstance(current, And) else "O"
            memo[digest] = (tag,) + tuple(
                sorted(memo[op.digest] for op in operands)
            )
    return memo[event.digest]


def _evaluate(event: Event, assignment: dict[int, int]) -> bool:
    memo: dict[Event, bool] = {}
    stack: list[tuple[Event, bool]] = [(event, False)]
    while stack:
        current, ready = stack.pop()
        if current in memo:
            continue
        if isinstance(current, (Lit, _TrueEvent, _FalseEvent)):
            memo[current] = current.evaluate(assignment)
            continue
        operands = _operands_of(current)
        if not ready:
            stack.append((current, True))
            stack.extend((op, False) for op in operands if op not in memo)
        elif isinstance(current, Not):
            memo[current] = not memo[current.operand]
        elif isinstance(current, And):
            memo[current] = all(memo[op] for op in current.operands)
        else:
            memo[current] = any(memo[op] for op in current.operands)
    return memo[event]


def _assign(event: Event, uid: int, index: int) -> Event:
    """``event`` conditioned on ``uid`` choosing ``index`` — iterative
    post-order rewrite.  Subtrees that do not mention ``uid`` are returned
    as-is (cheap membership test on the cached ``counts``)."""
    if uid not in event.counts:
        return event
    memo: dict[Event, Event] = {}
    stack: list[tuple[Event, bool]] = [(event, False)]
    while stack:
        current, ready = stack.pop()
        if current in memo:
            continue
        if uid not in current.counts:
            memo[current] = current
            continue
        if isinstance(current, Lit):
            memo[current] = TRUE_EVENT if index == current.index else FALSE_EVENT
            continue
        operands = _operands_of(current)
        if not ready:
            stack.append((current, True))
            stack.extend((op, False) for op in operands if op not in memo)
        elif isinstance(current, Not):
            memo[current] = negate(memo[current.operand])
        elif isinstance(current, And):
            memo[current] = all_of([memo[op] for op in current.operands])
        else:
            memo[current] = any_of([memo[op] for op in current.operands])
    return memo[event]


# -- exact probability ----------------------------------------------------------

def pivot_variable(event: Event) -> tuple[int, ProbNode]:
    """The Shannon pivot: the most frequently mentioned variable (ties by
    smallest uid) and its probability node.  Frequency ordering matters:
    query events are ORs of occurrence conjunctions that all share their
    top-level choice variable, so splitting on it first collapses every
    branch — min-uid ordering can instead split on branch-local variables
    and go exponential."""
    counts = event.counts
    if not counts:
        # No literals left but not a constant — cannot happen with the
        # simplifying constructors; fail loudly rather than guess.
        raise ProbabilityError(f"non-constant event without variables: {event!r}")
    uid = max(counts, key=lambda candidate: (counts[candidate], -candidate))
    node = _NODES.get(uid)
    if node is None:
        raise ProbabilityError(
            f"choice variable ▽{uid} is gone; was its event built through"
            " the interning constructors?"
        )
    return uid, node


def independent_components(
    operands: Sequence[Event],
) -> list[list[Event]]:
    """Partition operands into connected components by shared variables
    (union-find over operand indices).  Operands in different components
    mention disjoint variable sets and are therefore independent; the
    kernel uses this per expansion step, and
    :mod:`repro.pxml.events_compile` uses it once, top-down, to emit a
    factored pricing plan."""
    parent = list(range(len(operands)))

    def find(i: int) -> int:
        while parent[i] != i:
            parent[i] = parent[parent[i]]
            i = parent[i]
        return i

    owner: dict[int, int] = {}
    for i, op in enumerate(operands):
        for uid in op.counts:
            j = owner.get(uid)
            if j is None:
                owner[uid] = i
            else:
                root_i, root_j = find(i), find(j)
                if root_i != root_j:
                    parent[root_i] = root_j
    groups: dict[int, list[Event]] = {}
    for i, op in enumerate(operands):
        groups.setdefault(find(i), []).append(op)
    return list(groups.values())


# -- batched exact arithmetic ---------------------------------------------------

def _balanced_int_product(values: list[int]) -> int:
    """Product of ``values`` by pairwise tree reduction.  For the large
    integers exact corpus pricing produces, multiplying similarly-sized
    operands is far cheaper than a left fold that drags one huge
    accumulator through every step."""
    while len(values) > 1:
        paired = [
            values[i] * values[i + 1] for i in range(0, len(values) - 1, 2)
        ]
        if len(values) % 2:
            paired.append(values[-1])
        values = paired
    return values[0]


def product_of(factors: Sequence[Fraction]) -> Fraction:
    """Exact product of ``factors`` in one batch: numerators and
    denominators multiply separately as balanced integer trees, and the
    single :class:`Fraction` construction at the end runs *one* gcd
    normalization instead of one per multiplication.  Identical value to
    the sequential fold; measurably faster on the independence-product
    hot path (many components, large denominators)."""
    if not factors:
        return ONE
    if len(factors) == 1:
        return factors[0]
    return Fraction(
        _balanced_int_product([f.numerator for f in factors]),
        _balanced_int_product([f.denominator for f in factors]),
    )


def weighted_sum(
    weights: Sequence[Fraction], values: Sequence[Fraction]
) -> Fraction:
    """Exact ``Σ weights[i] · values[i]`` with a small-denominator fast
    path: terms accumulate as one integer numerator over a running least
    common denominator (``gcd`` is integer-exact), so the common Shannon
    shape — branch weights sharing one small denominator — costs integer
    adds instead of a Fraction normalization per term.  The single
    :class:`Fraction` at the end normalizes once; the value is identical
    to the sequential sum."""
    num = 0
    den = 1
    for weight, value in zip(weights, values):
        term_num = weight.numerator * value.numerator
        term_den = weight.denominator * value.denominator
        if term_den == den:
            num += term_num
        else:
            common = gcd(den, term_den)
            scale = term_den // common
            num = num * scale + term_num * (den // common)
            den = den * scale
    return Fraction(num, den)


#: plan kinds for the worklist evaluator
_PROD, _COPROD, _NOT, _SHANNON = 0, 1, 2, 3

#: (kind, sub-events, Shannon branch weights — None for the other kinds)
_Plan = tuple[int, tuple[Event, ...], Optional[tuple[Fraction, ...]]]


def _expand(event: Event) -> _Plan:
    """One decomposition step: how to compute P(event) from sub-events."""
    if isinstance(event, Not):
        return _NOT, (event.operand,), None
    components = independent_components(event.operands)
    if len(components) > 1:
        if isinstance(event, And):
            return _PROD, tuple(all_of(group) for group in components), None
        return _COPROD, tuple(any_of(group) for group in components), None
    # One connected component: Shannon-expand on the pivot variable.
    uid, node = pivot_variable(event)
    children: list[Event] = []
    weights: list[Fraction] = []
    for index, possibility in enumerate(node.possibilities):
        if possibility.prob == 0:
            continue
        children.append(_assign(event, uid, index))
        weights.append(possibility.prob)
    return _SHANNON, tuple(children), tuple(weights)


def event_probability(
    event: Event, *, _memo: Optional[dict[bytes, Fraction]] = None
) -> Fraction:
    """Exact probability of ``event`` under independent choices.

    Worklist-driven (non-recursive) evaluation: complement and
    independence decompositions first, Shannon expansion on the most
    frequently mentioned variable only within a single connected
    component.  Memoized on the canonical digest so structurally shared
    subproblems collapse — pass ``_memo`` to share the table across
    calls (what :class:`~repro.pxml.events_cache.EventProbabilityCache`
    does).
    """
    if event is TRUE_EVENT:
        return ONE
    if event is FALSE_EVENT:
        return ZERO
    memo = _memo if _memo is not None else {}
    cached = memo.get(event.digest)
    if cached is not None:
        return cached

    stack: list[tuple[Event, Optional[_Plan]]] = [(event, None)]
    while stack:
        current, plan = stack.pop()
        digest = current.digest
        if digest in memo:
            continue
        if plan is None:
            if isinstance(current, Lit):
                memo[digest] = current.node.possibilities[current.index].prob
                continue
            plan = _expand(current)
            stack.append((current, plan))
            for child in plan[1]:
                if (
                    child is not TRUE_EVENT
                    and child is not FALSE_EVENT
                    and child.digest not in memo
                ):
                    stack.append((child, None))
        else:
            kind, children, weights = plan
            if kind == _SHANNON:
                assert weights is not None  # _expand always pairs them
                live_weights: list[Fraction] = []
                live_probs: list[Fraction] = []
                for weight, child in zip(weights, children):
                    if child is FALSE_EVENT:
                        continue
                    live_weights.append(weight)
                    live_probs.append(
                        ONE if child is TRUE_EVENT else memo[child.digest]
                    )
                total = weighted_sum(live_weights, live_probs)
            elif kind == _NOT:
                child = children[0]
                total = ONE - memo[child.digest]
            elif kind == _PROD:
                total = product_of([memo[child.digest] for child in children])
            else:  # _COPROD
                total = ONE - product_of(
                    [ONE - memo[child.digest] for child in children]
                )
            memo[digest] = total
    return memo[event.digest]


def conjunction_of_path(lits: Iterable[Event]) -> Event:
    """Convenience alias used by traversals: AND of path literals."""
    return all_of(lits)
