"""Event algebra over probabilistic-XML choice variables.

Every probability node ▽ is an independent random variable whose outcomes
are its possibility indices; ``Lit(node, index)`` is the event "▽ chose
possibility *index*".  Events are boolean combinations of literals and are
what the query engine computes: "value v appears in the answer" is an OR
over occurrence events, each a conjunction of the choices that make the
occurrence exist and satisfy the query predicate.

**Guardedness contract.** Possible-world semantics only assigns choices to
*reachable* probability nodes.  Event probabilities computed here treat all
variables as always-present and independent, which agrees with world
semantics as long as events are *guarded*: a literal for a node may only
matter in conjunction with the literals that make the node reachable.
Events produced by path traversal (existence events) are guarded by
construction; the test suite cross-checks event probabilities against
world enumeration.

Probability computation is exact (:class:`fractions.Fraction`) via
recursive Shannon expansion over the variables, with memoization on a
canonical form of the conditioned event.
"""

from __future__ import annotations

from fractions import Fraction
from typing import Iterable, Optional, Union

from ..errors import ProbabilityError
from ..probability import ONE, ZERO
from .model import ProbNode


class Event:
    """Base class for events.  Use the module-level constructors
    (:func:`lit`, :func:`all_of`, :func:`any_of`, :func:`none_of`) rather
    than instantiating subclasses directly — they simplify on the fly."""

    __slots__ = ()

    def key(self) -> tuple:
        raise NotImplementedError

    def variables(self) -> set[int]:
        """uids of the probability nodes this event mentions."""
        raise NotImplementedError

    def assign(self, uid: int, index: int) -> "Event":
        """The event conditioned on variable ``uid`` choosing ``index``."""
        raise NotImplementedError

    def evaluate(self, assignment: dict[int, int]) -> bool:
        """Truth value under a complete assignment (uid -> index)."""
        raise NotImplementedError

    # Convenient operators -------------------------------------------------

    def __and__(self, other: "Event") -> "Event":
        return all_of([self, other])

    def __or__(self, other: "Event") -> "Event":
        return any_of([self, other])

    def __invert__(self) -> "Event":
        return negate(self)


class _TrueEvent(Event):
    __slots__ = ()

    def key(self) -> tuple:
        return ("T",)

    def variables(self) -> set[int]:
        return set()

    def assign(self, uid: int, index: int) -> Event:
        return self

    def evaluate(self, assignment: dict[int, int]) -> bool:
        return True

    def __repr__(self) -> str:
        return "TRUE"


class _FalseEvent(Event):
    __slots__ = ()

    def key(self) -> tuple:
        return ("F",)

    def variables(self) -> set[int]:
        return set()

    def assign(self, uid: int, index: int) -> Event:
        return self

    def evaluate(self, assignment: dict[int, int]) -> bool:
        return False

    def __repr__(self) -> str:
        return "FALSE"


TRUE_EVENT = _TrueEvent()
FALSE_EVENT = _FalseEvent()


class Lit(Event):
    """The event "probability node ``node`` chose possibility ``index``"."""

    __slots__ = ("node", "index")

    def __init__(self, node: ProbNode, index: int):
        if not 0 <= index < len(node.possibilities):
            raise ProbabilityError(
                f"possibility index {index} out of range for ▽{node.uid}"
            )
        self.node = node
        self.index = index

    def key(self) -> tuple:
        return ("L", self.node.uid, self.index)

    def variables(self) -> set[int]:
        return {self.node.uid}

    def assign(self, uid: int, index: int) -> Event:
        if uid != self.node.uid:
            return self
        return TRUE_EVENT if index == self.index else FALSE_EVENT

    def evaluate(self, assignment: dict[int, int]) -> bool:
        return assignment.get(self.node.uid) == self.index

    def __repr__(self) -> str:
        return f"(▽{self.node.uid}={self.index})"


class Not(Event):
    __slots__ = ("operand", "_key", "_vars")

    def __init__(self, operand: Event):
        self.operand = operand
        self._key = None
        self._vars = None

    def key(self) -> tuple:
        if self._key is None:
            self._key = ("N", self.operand.key())
        return self._key

    def variables(self) -> set[int]:
        if self._vars is None:
            self._vars = self.operand.variables()
        return self._vars

    def assign(self, uid: int, index: int) -> Event:
        return negate(self.operand.assign(uid, index))

    def evaluate(self, assignment: dict[int, int]) -> bool:
        return not self.operand.evaluate(assignment)

    def __repr__(self) -> str:
        return f"¬{self.operand!r}"


class And(Event):
    __slots__ = ("operands", "_key", "_vars")

    def __init__(self, operands: tuple[Event, ...]):
        self.operands = operands
        self._key = None
        self._vars = None

    def key(self) -> tuple:
        if self._key is None:
            self._key = ("A",) + tuple(sorted(op.key() for op in self.operands))
        return self._key

    def variables(self) -> set[int]:
        if self._vars is None:
            result: set[int] = set()
            for op in self.operands:
                result |= op.variables()
            self._vars = result
        return self._vars

    def assign(self, uid: int, index: int) -> Event:
        return all_of([op.assign(uid, index) for op in self.operands])

    def evaluate(self, assignment: dict[int, int]) -> bool:
        return all(op.evaluate(assignment) for op in self.operands)

    def __repr__(self) -> str:
        return "(" + " ∧ ".join(repr(op) for op in self.operands) + ")"


class Or(Event):
    __slots__ = ("operands", "_key", "_vars")

    def __init__(self, operands: tuple[Event, ...]):
        self.operands = operands
        self._key = None
        self._vars = None

    def key(self) -> tuple:
        if self._key is None:
            self._key = ("O",) + tuple(sorted(op.key() for op in self.operands))
        return self._key

    def variables(self) -> set[int]:
        if self._vars is None:
            result: set[int] = set()
            for op in self.operands:
                result |= op.variables()
            self._vars = result
        return self._vars

    def assign(self, uid: int, index: int) -> Event:
        return any_of([op.assign(uid, index) for op in self.operands])

    def evaluate(self, assignment: dict[int, int]) -> bool:
        return any(op.evaluate(assignment) for op in self.operands)

    def __repr__(self) -> str:
        return "(" + " ∨ ".join(repr(op) for op in self.operands) + ")"


# -- simplifying constructors ------------------------------------------------

def lit(node: ProbNode, index: int) -> Event:
    """Literal constructor.  A literal on a single-possibility node is
    simply TRUE (the choice is forced)."""
    if len(node.possibilities) == 1:
        return TRUE_EVENT
    return Lit(node, index)


def negate(event: Event) -> Event:
    if event is TRUE_EVENT:
        return FALSE_EVENT
    if event is FALSE_EVENT:
        return TRUE_EVENT
    if isinstance(event, Not):
        return event.operand
    return Not(event)


def all_of(events: Iterable[Event]) -> Event:
    """Conjunction with flattening, deduplication and contradiction
    detection (a node cannot choose two different possibilities)."""
    flat: list[Event] = []
    seen: set[tuple] = set()
    chosen: dict[int, int] = {}
    for event in events:
        if event is FALSE_EVENT:
            return FALSE_EVENT
        if event is TRUE_EVENT:
            continue
        parts = event.operands if isinstance(event, And) else (event,)
        for part in parts:
            if part is FALSE_EVENT:
                return FALSE_EVENT
            if part is TRUE_EVENT:
                continue
            if isinstance(part, Lit):
                uid = part.node.uid
                if uid in chosen and chosen[uid] != part.index:
                    return FALSE_EVENT
                chosen[uid] = part.index
            key = part.key()
            if key not in seen:
                seen.add(key)
                flat.append(part)
    if not flat:
        return TRUE_EVENT
    if len(flat) == 1:
        return flat[0]
    return And(tuple(flat))


def any_of(events: Iterable[Event]) -> Event:
    """Disjunction with flattening and deduplication."""
    flat: list[Event] = []
    seen: set[tuple] = set()
    for event in events:
        if event is TRUE_EVENT:
            return TRUE_EVENT
        if event is FALSE_EVENT:
            continue
        parts = event.operands if isinstance(event, Or) else (event,)
        for part in parts:
            if part is TRUE_EVENT:
                return TRUE_EVENT
            if part is FALSE_EVENT:
                continue
            key = part.key()
            if key not in seen:
                seen.add(key)
                flat.append(part)
    if not flat:
        return FALSE_EVENT
    if len(flat) == 1:
        return flat[0]
    return Or(tuple(flat))


def none_of(events: Iterable[Event]) -> Event:
    """¬(e₁ ∨ e₂ ∨ …)."""
    return negate(any_of(events))


# -- exact probability ----------------------------------------------------------

def _collect_nodes(event: Event, registry: dict[int, ProbNode]) -> None:
    if isinstance(event, Lit):
        registry.setdefault(event.node.uid, event.node)
    elif isinstance(event, Not):
        _collect_nodes(event.operand, registry)
    elif isinstance(event, (And, Or)):
        for op in event.operands:
            _collect_nodes(op, registry)


def _count_occurrences(event: Event, counts: dict[int, int]) -> None:
    if isinstance(event, Lit):
        counts[event.node.uid] = counts.get(event.node.uid, 0) + 1
    elif isinstance(event, Not):
        _count_occurrences(event.operand, counts)
    elif isinstance(event, (And, Or)):
        for op in event.operands:
            _count_occurrences(op, counts)


def event_probability(
    event: Event, *, _memo: Optional[dict[tuple, Fraction]] = None
) -> Fraction:
    """Exact probability of ``event`` under independent choices.

    Recursive Shannon expansion: condition on the *most frequently
    mentioned* variable (ties by uid), recurse on each possibility,
    combine with that possibility's probability.  Frequency ordering
    matters: query events are ORs of occurrence conjunctions that all
    share their top-level choice variable, so splitting on it first
    collapses every branch — min-uid ordering can instead split on
    branch-local variables and go exponential.  Memoized on the canonical
    event key so structurally shared subproblems collapse.
    """
    if event is TRUE_EVENT:
        return ONE
    if event is FALSE_EVENT:
        return ZERO
    memo = _memo if _memo is not None else {}
    key = event.key()
    cached = memo.get(key)
    if cached is not None:
        return cached

    registry: dict[int, ProbNode] = {}
    _collect_nodes(event, registry)
    if not registry:
        # No literals left but not a constant — cannot happen with the
        # simplifying constructors; fail loudly rather than guess.
        raise ProbabilityError(f"non-constant event without variables: {event!r}")
    counts: dict[int, int] = {}
    _count_occurrences(event, counts)
    uid = max(registry, key=lambda candidate: (counts.get(candidate, 0), -candidate))
    node = registry[uid]
    total = ZERO
    for index, possibility in enumerate(node.possibilities):
        if possibility.prob == 0:
            continue
        conditioned = event.assign(uid, index)
        total += possibility.prob * event_probability(conditioned, _memo=memo)
    memo[key] = total
    return total


def conjunction_of_path(lits: Iterable[Event]) -> Event:
    """Convenience alias used by traversals: AND of path literals."""
    return all_of(lits)
