"""Possible-world semantics: enumeration and counting.

A world picks one possibility at every probability node it can reach from
the root; its probability is the product of the picked probabilities.
Worlds are *choice worlds*: two different combinations of choices count as
two worlds even when they produce identical documents (the paper calls the
raw number-of-worlds measure "deceiving" for exactly this kind of reason;
:func:`distinct_worlds` merges duplicates when a semantic census is
wanted).
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction
from typing import Iterator, Optional, Union

from ..errors import ExplosionError
from ..probability import ONE
from ..xmlkit.nodes import XChild, XDocument, XElement, XText, canonical_key
from .model import PXChild, PXDocument, PXElement, PXText, ProbNode

DEFAULT_WORLD_LIMIT = 200_000


@dataclass(frozen=True)
class World:
    """One possible world: a plain document and its probability."""

    document: XDocument
    probability: Fraction


def world_count(node: Union[PXDocument, ProbNode, PXElement, PXText]) -> int:
    """Exact number of (choice) worlds — a big integer, never enumerated.

    Computed bottom-up: a probability node sums over its possibilities, a
    possibility/element multiplies over its children.
    """
    if isinstance(node, PXDocument):
        return world_count(node.root)
    if isinstance(node, PXText):
        return 1
    if isinstance(node, PXElement):
        result = 1
        for child in node.children:
            result *= world_count(child)
        return result
    if isinstance(node, ProbNode):
        total = 0
        for possibility in node.possibilities:
            branch = 1
            for child in possibility.children:
                branch *= world_count(child)
            total += branch
        return total
    raise TypeError(f"cannot count worlds of {type(node).__name__}")


def _expand_element(
    element: PXElement, limit: Optional[int]
) -> list[tuple[XElement, Fraction]]:
    variants: list[tuple[XElement, Fraction]] = [
        (XElement(element.tag, dict(element.attributes)), ONE)
    ]
    for prob_child in element.children:
        child_variants = _expand_prob(prob_child, limit)
        merged: list[tuple[XElement, Fraction]] = []
        for base, base_prob in variants:
            for children, child_prob in child_variants:
                clone = base.copy()
                for child in children:
                    clone.append(child.copy())
                merged.append((clone, base_prob * child_prob))
                if limit is not None and len(merged) > limit:
                    raise ExplosionError(
                        f"world enumeration under <{element.tag}> exceeds"
                        f" the limit of {limit} variants",
                        estimated=world_count(element),
                    )
        variants = merged
    return variants


def _expand_prob(
    node: ProbNode, limit: Optional[int]
) -> list[tuple[list[XChild], Fraction]]:
    expansions: list[tuple[list[XChild], Fraction]] = []
    for possibility in node.possibilities:
        branch: list[tuple[list[XChild], Fraction]] = [([], possibility.prob)]
        for child in possibility.children:
            if isinstance(child, PXText):
                branch = [
                    (items + [XText(child.value)], prob) for items, prob in branch
                ]
            else:
                child_variants = _expand_element(child, limit)
                branch = [
                    (items + [variant], prob * variant_prob)
                    for items, prob in branch
                    for variant, variant_prob in child_variants
                ]
            if limit is not None and len(branch) > limit:
                raise ExplosionError(
                    f"world enumeration at ▽{node.uid} exceeds the limit"
                    f" of {limit} variants",
                    estimated=world_count(node),
                )
        expansions.extend(branch)
        if limit is not None and len(expansions) > limit:
            raise ExplosionError(
                f"world enumeration at ▽{node.uid} exceeds the limit"
                f" of {limit} variants",
                estimated=world_count(node),
            )
    return expansions


def iter_worlds(
    document: PXDocument, *, limit: Optional[int] = DEFAULT_WORLD_LIMIT
) -> Iterator[World]:
    """Enumerate all possible worlds with their probabilities.

    Probabilities sum to exactly 1 over the enumeration.  Raises
    :class:`ExplosionError` when more than ``limit`` worlds would be
    produced (pass ``limit=None`` at your own risk — the count grows
    exponentially; check :func:`world_count` first).
    """
    for children, prob in _expand_prob(document.root, limit):
        elements = [child for child in children if isinstance(child, XElement)]
        if len(elements) != 1:
            raise ExplosionError(
                "a root possibility expanded to"
                f" {len(elements)} root elements; not a document"
            )
        yield World(XDocument(elements[0]), prob)


def distinct_worlds(
    document: PXDocument, *, limit: Optional[int] = DEFAULT_WORLD_LIMIT
) -> list[tuple[XDocument, Fraction]]:
    """Worlds merged by document equality (order-insensitive), with summed
    probabilities, most probable first."""
    merged: dict[tuple, tuple[XDocument, Fraction]] = {}
    for world in iter_worlds(document, limit=limit):
        key = canonical_key(world.document.root)
        if key in merged:
            doc, prob = merged[key]
            merged[key] = (doc, prob + world.probability)
        else:
            merged[key] = (world.document, world.probability)
    return sorted(merged.values(), key=lambda pair: (-pair[1], id(pair[0])))
