"""Pre-fork multi-worker serving tier: N processes, one dataspace.

``imprecise serve --http HOST:PORT --workers N`` turns the single-process
front into a small production tier:

* **N worker subprocesses**, each a full ``imprecise serve --http`` on an
  ephemeral loopback port, all sharing one store directory and (when
  configured) one ``--cache-dir`` — safe because
  :class:`~repro.dbms.cache_store.AnswerCacheStore` takes its writes in
  ``BEGIN IMMEDIATE`` transactions with bounded busy retries and
  :class:`~repro.dbms.service.DataspaceService` re-reads documents a
  sibling process invalidated (the cross-process version fence);
* a **parent acceptor/router** (:class:`RouterApp` on the same asyncio
  :class:`~repro.server.http.HTTPServer` core) that proxies each request
  to a worker over pooled keep-alive connections;
* **consistent-hash document→worker sharding**
  (:class:`ConsistentHashRing`): every request that names a document
  (``/query``, ``/batch``, ``/aggregate``, ``/feedback``,
  ``/documents/{name}``…, and ``/integrate`` by its *output*) lands on
  the same worker every time, so each worker's in-memory layers —
  materialized documents, compiled engines, event-probability caches —
  stay hot for *its* shard instead of every worker re-deriving every
  document.  Requests without document affinity (``/search``,
  ``/documents``, ``/healthz``) round-robin;
* **graceful drain**: SIGTERM stops the router's accept loop, lets
  in-flight proxied requests finish, then SIGTERMs the children (each of
  which runs its own graceful shutdown).

``GET /stats`` on the router returns ``{"router": …, "ring": …,
"workers": [each worker's full /stats dict]}`` — the router's own
per-endpoint counters/latency histograms plus every worker's, so one
scrape sees the whole tier (``docs/http_api.md``).

Sharding is an *affinity* optimization, never a correctness requirement:
any worker can serve any document (shared store, shared cache, version
fence), which is what makes worker membership changes across restarts
safe — a document whose shard moved is simply re-priced or served from
the shared persistent cache by its new owner.
"""

from __future__ import annotations

import asyncio
import bisect
import hashlib
import json
import os
import signal
import subprocess
import sys
import threading
import time
from collections import deque
from pathlib import Path
from typing import Optional, Sequence

from ..errors import ImpreciseError
from .app import HTTPMetrics, route_label
from .http import (
    BackgroundServer,
    HTTPRequest,
    HTTPResponse,
    HTTPServer,
    json_response,
)

__all__ = [
    "ConsistentHashRing",
    "MultiProcServer",
    "RouterApp",
    "WorkerProcess",
    "run_multiproc",
]

#: Virtual points per ring member: enough that a 4–8 worker ring is
#: statistically even (±a few percent), few enough that building the
#: ring is microseconds.
RING_REPLICAS = 64

#: Idle proxied connections the router retains per worker.
POOL_MAX_IDLE = 8

#: Endpoints that read a document name out of the JSON body, and the
#: field that carries it.  ``/integrate`` routes by its *output* — that
#: is the document it writes and invalidates, so the write lands on the
#: worker that will serve the follow-up queries.
_BODY_AFFINITY = {
    "/query": "document",
    "/batch": "document",
    "/aggregate": "document",
    "/feedback": "document",
    "/integrate": "output",
}


class ConsistentHashRing:
    """Consistent hashing of string keys onto a fixed member set.

    Each member contributes ``replicas`` SHA-256 points on a ring; a key
    maps to the member owning the first point at or after the key's own
    hash.  Properties the router depends on (pinned by tests):

    * deterministic — same members, same key, same owner, on every
      platform and in every process (``hashlib.sha256``, not the
      per-process-salted builtin ``hash``);
    * stable under *key* churn — adding or deleting documents never
      moves any other document's owner (membership did not change);
    * minimal movement under *membership* churn — going from N to N+1
      members re-homes roughly ``1/(N+1)`` of the keys, not all of them.
    """

    def __init__(self, members: Sequence[str], *, replicas: int = RING_REPLICAS):
        members = list(members)
        if not members:
            raise ValueError("ring needs at least one member")
        if len(set(members)) != len(members):
            raise ValueError(f"duplicate ring members: {members!r}")
        if replicas < 1:
            raise ValueError(f"replicas must be >= 1, got {replicas}")
        self.members = tuple(members)
        self.replicas = replicas
        points = []
        for member in members:
            for replica in range(replicas):
                blob = hashlib.sha256(
                    f"{member}#{replica}".encode("utf-8")
                ).digest()
                points.append((int.from_bytes(blob[:8], "big"), member))
        points.sort()
        self._points = points
        self._keys = [point for point, _ in points]

    def member_for(self, key: str) -> str:
        """The member that owns ``key``."""
        point = int.from_bytes(
            hashlib.sha256(key.encode("utf-8")).digest()[:8], "big"
        )
        index = bisect.bisect_right(self._keys, point) % len(self._points)
        return self._points[index][1]

    def __repr__(self) -> str:
        return (
            f"ConsistentHashRing(members={list(self.members)!r},"
            f" replicas={self.replicas})"
        )


class _UpstreamConnection:
    """One keep-alive proxied connection to a worker (router-internal)."""

    def __init__(self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter):
        self.reader = reader
        self.writer = writer
        self.reused = False  # True once it has served a proxied request

    async def read_response(self) -> tuple:
        """``(status, headers, body)`` of one worker response.  Workers
        always frame with ``Content-Length`` (the HTTP core sets it on
        every response), so no chunked decoding is needed."""
        head = await self.reader.readuntil(b"\r\n\r\n")
        lines = head[:-4].decode("latin-1").split("\r\n")
        parts = lines[0].split(" ", 2)
        status = int(parts[1])
        headers = {}
        for line in lines[1:]:
            name, _, value = line.partition(":")
            headers[name.strip().lower()] = value.strip()
        length = int(headers.get("content-length", "0"))
        body = await self.reader.readexactly(length) if length else b""
        return status, headers, body

    def close(self) -> None:
        self.writer.close()


class _Upstream:
    """A worker as the router sees it: an address plus a small pool of
    idle keep-alive connections.  Only touched from the router's event
    loop thread, so the pool list needs no locking."""

    def __init__(self, key: str, host: str, port: int, *, max_idle: int = POOL_MAX_IDLE):
        self.key = key
        self.host = host
        self.port = port
        self.max_idle = max_idle
        self._idle: list = []
        self.connects = 0  # diagnostics: fresh TCP connections dialed

    async def acquire(self) -> _UpstreamConnection:
        while self._idle:
            conn = self._idle.pop()
            if conn.writer.is_closing():
                conn.close()
                continue
            return conn
        reader, writer = await asyncio.open_connection(self.host, self.port)
        self.connects += 1
        return _UpstreamConnection(reader, writer)

    def release(self, conn: _UpstreamConnection) -> None:
        conn.reused = True
        if len(self._idle) < self.max_idle and not conn.writer.is_closing():
            self._idle.append(conn)
        else:
            conn.close()

    def close_idle(self) -> None:
        idle, self._idle = self._idle, []
        for conn in idle:
            conn.close()


class RouterApp:
    """The parent acceptor's async handler: shard, proxy, observe.

    Plugs into :class:`~repro.server.http.HTTPServer` exactly like
    :class:`~repro.server.app.ServerApp` does; instead of calling a
    service it forwards the raw request to a worker and relays the
    response.  A dead pooled connection (worker restarted its keep-alive)
    is retried once on a fresh connection when that cannot double-apply
    a write — the same idempotency rule as
    :class:`~repro.server.client.DataspaceClient` — otherwise the caller
    gets a ``502 bad_gateway``.
    """

    def __init__(self, upstreams: Sequence[_Upstream], *, slow_ms: int = 500):
        if not upstreams:
            raise ValueError("router needs at least one upstream worker")
        self.upstreams = list(upstreams)
        self.ring = ConsistentHashRing([u.key for u in self.upstreams])
        self._by_key = {u.key: u for u in self.upstreams}
        self.metrics = HTTPMetrics(slow_ms=slow_ms)
        self._in_flight = 0
        self._round_robin = 0

    # -- routing ------------------------------------------------------------

    def _affinity(self, request: HTTPRequest) -> Optional[str]:
        """The document name this request has affinity to, or ``None``
        for round-robin (no name, or a body the worker will 400 anyway)."""
        path = request.path.rstrip("/") or "/"
        parts = path.strip("/").split("/")
        if len(parts) >= 2 and parts[0] == "documents":
            return parts[1]
        field = _BODY_AFFINITY.get(path)
        if field is not None and request.method == "POST":
            try:
                body = request.json()
            except (ValueError, UnicodeDecodeError):
                return None
            if isinstance(body, dict):
                name = body.get(field)
                if isinstance(name, str):
                    return name
        return None

    def worker_for(self, request: HTTPRequest) -> _Upstream:
        name = self._affinity(request)
        if name is not None:
            return self._by_key[self.ring.member_for(name)]
        upstream = self.upstreams[self._round_robin % len(self.upstreams)]
        self._round_robin += 1
        return upstream

    # -- handling -----------------------------------------------------------

    async def __call__(self, request: HTTPRequest) -> HTTPResponse:
        label = route_label(request.method, request.path)
        self._in_flight += 1
        start = time.monotonic()
        try:
            if request.method == "GET" and (
                request.path.rstrip("/") or "/"
            ) == "/stats":
                response = await self._stats()
            else:
                response = await self._forward(self.worker_for(request), request)
        finally:
            self._in_flight -= 1
        self.metrics.observe(label, time.monotonic() - start, response.status)
        return response

    async def _forward(
        self, upstream: _Upstream, request: HTTPRequest
    ) -> HTTPResponse:
        body = request.body
        headers = {
            "host": f"{upstream.host}:{upstream.port}",
            "content-length": str(len(body)),
        }
        content_type = request.headers.get("content-type")
        if content_type:
            headers["content-type"] = content_type
        head = f"{request.method} {request.target} HTTP/1.1\r\n" + "".join(
            f"{name}: {value}\r\n" for name, value in headers.items()
        )
        payload = head.encode("latin-1") + b"\r\n" + body
        idempotent = request.method in ("GET", "PUT", "DELETE")
        error: Optional[BaseException] = None
        for attempt in (1, 2):
            try:
                conn = await upstream.acquire()
            except OSError as failure:
                # Connect refused/reset: the worker is gone — that is a
                # gateway failure, not an internal router error.
                error = failure
                break
            reused = conn.reused
            sent = False
            try:
                conn.writer.write(payload)
                await conn.writer.drain()
                sent = True
                status, response_headers, response_body = (
                    await conn.read_response()
                )
            except (ConnectionError, OSError, EOFError, ValueError,
                    asyncio.IncompleteReadError) as failure:
                conn.close()
                error = failure
                # Retry only a *pooled* connection that may simply have
                # gone stale, and only when a replay cannot double-apply
                # a non-idempotent write (same rule as DataspaceClient).
                if attempt == 1 and reused and (not sent or idempotent):
                    continue
                break
            upstream.release(conn)
            response = HTTPResponse(status=status, body=response_body)
            worker_type = response_headers.get("content-type")
            if worker_type:
                response.content_type = worker_type
            return response
        return json_response(
            {
                "error": {
                    "type": "bad_gateway",
                    "message": f"worker {upstream.key} unreachable: {error}",
                }
            },
            status=502,
        )

    async def _stats(self) -> HTTPResponse:
        """One scrape for the whole tier: router metrics + ring layout +
        every worker's own ``GET /stats`` document."""
        probe = HTTPRequest(
            method="GET", target="/stats", path="/stats", query={}, headers={}
        )
        responses = await asyncio.gather(
            *(self._forward(upstream, probe) for upstream in self.upstreams)
        )
        workers = []
        for upstream, response in zip(self.upstreams, responses):
            try:
                payload = json.loads(response.body.decode("utf-8"))
            except (ValueError, UnicodeDecodeError):
                payload = {"error": {"type": "bad_gateway",
                                     "message": "unreadable worker stats"}}
            if not isinstance(payload, dict):
                payload = {"stats": payload}
            workers.append(
                {
                    "worker": upstream.key,
                    "address": f"{upstream.host}:{upstream.port}",
                    "pool_connects": upstream.connects,
                    "stats": payload,
                }
            )
        return json_response(
            {
                "router": self.metrics.snapshot(in_flight=self._in_flight - 1),
                "ring": {
                    "workers": list(self.ring.members),
                    "replicas": self.ring.replicas,
                },
                "workers": workers,
            }
        )

    def close_idle(self) -> None:
        for upstream in self.upstreams:
            upstream.close_idle()


class WorkerProcess:
    """One ``imprecise serve --http`` child on an ephemeral port.

    The port is parsed from the child's stable ``serving on
    http://HOST:PORT`` startup line; stdout/stderr are drained by
    daemon threads into bounded rings so a chatty child can never fill
    a pipe buffer and wedge, and the last lines are available for
    diagnostics when a child dies."""

    def __init__(
        self,
        index: int,
        argv: Sequence[str],
        *,
        env: Optional[dict] = None,
        startup_timeout: float = 30.0,
    ):
        self.index = index
        self.key = f"worker-{index}"
        self.proc = subprocess.Popen(
            list(argv),
            stdout=subprocess.PIPE,
            stderr=subprocess.PIPE,
            text=True,
            env=env,
        )
        self._output: deque = deque(maxlen=50)
        banner: dict = {}

        def _read_banner() -> None:
            banner["line"] = self.proc.stdout.readline()

        reader = threading.Thread(target=_read_banner, daemon=True)
        reader.start()
        reader.join(startup_timeout)
        line = (banner.get("line") or "").strip()
        if not line.startswith("serving on http://"):
            self.proc.kill()
            try:
                _, stderr = self.proc.communicate(timeout=5)
            except subprocess.TimeoutExpired:
                stderr = ""
            raise ImpreciseError(
                f"{self.key} failed to start (got {line!r}):"
                f" {(stderr or '').strip()[-500:]}"
            )
        address = line[len("serving on http://"):]
        host, _, port_text = address.rpartition(":")
        self.host = host.strip("[]")
        self.port = int(port_text)
        for stream in (self.proc.stdout, self.proc.stderr):
            threading.Thread(
                target=self._drain, args=(stream,), daemon=True
            ).start()

    def _drain(self, stream) -> None:
        try:
            for line in stream:
                self._output.append(line.rstrip("\n"))
        except ValueError:
            pass  # stream closed under us during shutdown

    def output_tail(self) -> list:
        """The child's most recent output lines (diagnostics)."""
        return list(self._output)

    def stop(self, timeout: float = 30.0) -> Optional[int]:
        """SIGTERM (the child drains gracefully), escalating to SIGKILL
        past ``timeout``; returns the exit status."""
        if self.proc.poll() is None:
            self.proc.send_signal(signal.SIGTERM)
        try:
            return self.proc.wait(timeout)
        except subprocess.TimeoutExpired:
            self.proc.kill()
            return self.proc.wait(5)

    def __repr__(self) -> str:
        return f"WorkerProcess({self.key}, {self.host}:{self.port})"


def _worker_argv(
    store_dir,
    *,
    cache_dir=None,
    worker_args: Sequence[str] = (),
) -> list:
    argv = [sys.executable, "-m", "repro", "serve", str(store_dir),
            "--http", "127.0.0.1:0"]
    if cache_dir is not None:
        argv += ["--cache-dir", str(cache_dir)]
    argv += list(worker_args)
    return argv


def _worker_env() -> dict:
    """The spawn environment: inherit, but make sure the children can
    import this very package even when it is only on ``sys.path`` via
    ``PYTHONPATH=src`` (tests) rather than installed."""
    env = dict(os.environ)
    package_root = str(Path(__file__).resolve().parents[2])
    existing = env.get("PYTHONPATH", "")
    if package_root not in existing.split(os.pathsep):
        env["PYTHONPATH"] = (
            package_root + (os.pathsep + existing if existing else "")
        )
    return env


class MultiProcServer:
    """The whole tier as one object: spawn N workers, run the router.

    The embedding shape tests and benchmarks use::

        tier = MultiProcServer(store_dir, workers=4, cache_dir=cache_dir)
        host, port = tier.start()
        ...                             # drive it with DataspaceClient
        tier.stop()

    ``stop()`` drains the router first (in-flight proxied requests
    finish, new connections are refused), then SIGTERMs the children and
    waits for their own graceful exits.  Context-manager friendly.
    """

    def __init__(
        self,
        store_dir,
        *,
        workers: int = 4,
        cache_dir=None,
        host: str = "127.0.0.1",
        port: int = 0,
        worker_args: Sequence[str] = (),
        slow_ms: int = 500,
        startup_timeout: float = 30.0,
    ):
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        self.store_dir = store_dir
        self.cache_dir = cache_dir
        self.n_workers = workers
        self.host = host
        self.port = port
        self.worker_args = tuple(worker_args)
        self.slow_ms = slow_ms
        self.startup_timeout = startup_timeout
        self.workers: list = []
        self.router: Optional[RouterApp] = None
        self._background: Optional[BackgroundServer] = None

    def start(self) -> tuple:
        """Spawn the children, start the router; returns the router's
        bound ``(host, port)``."""
        argv = _worker_argv(
            self.store_dir,
            cache_dir=self.cache_dir,
            worker_args=self.worker_args,
        )
        env = _worker_env()
        try:
            for index in range(self.n_workers):
                self.workers.append(
                    WorkerProcess(
                        index, argv, env=env,
                        startup_timeout=self.startup_timeout,
                    )
                )
        except BaseException:
            self._stop_workers()
            raise
        self.router = RouterApp(
            [_Upstream(w.key, w.host, w.port) for w in self.workers],
            slow_ms=self.slow_ms,
        )
        self._background = BackgroundServer(self.router, self.host, self.port)
        try:
            bound = self._background.start()
        except BaseException:
            self._stop_workers()
            raise
        self.host, self.port = bound
        return bound

    def _stop_workers(self) -> None:
        workers, self.workers = self.workers, []
        for worker in workers:
            worker.stop()

    def stop(self, grace: float = 5.0) -> None:
        """Drain the router, then the children.  Idempotent."""
        if self._background is not None:
            background, self._background = self._background, None
            background.stop(grace=grace)
        self._stop_workers()

    def __enter__(self) -> "MultiProcServer":
        self.start()
        return self

    def __exit__(self, *exc_info) -> None:
        self.stop()


def run_multiproc(
    store_dir,
    host: str,
    port: int,
    workers: int,
    *,
    cache_dir=None,
    worker_args: Sequence[str] = (),
    slow_ms: int = 500,
) -> int:
    """The blocking CLI entry (``imprecise serve --http --workers N``):
    run the tier until SIGINT/SIGTERM, then drain router and children.

    Prints the same stable ``serving on http://HOST:PORT`` first line as
    the single-process front (clients parsing it cannot tell the tiers
    apart), followed by one ``workers: N`` line."""
    tier = MultiProcServer(
        store_dir,
        workers=workers,
        cache_dir=cache_dir,
        host=host,
        port=port,
        worker_args=worker_args,
        slow_ms=slow_ms,
    )
    stop = threading.Event()

    def _signalled(signum, frame) -> None:
        stop.set()

    previous = {}
    for signum in (signal.SIGINT, signal.SIGTERM):
        try:
            previous[signum] = signal.signal(signum, _signalled)
        except (ValueError, OSError):
            pass  # not the main thread / unsupported platform
    try:
        bound_host, bound_port = tier.start()
        display = f"[{bound_host}]" if ":" in bound_host else bound_host
        print(f"serving on http://{display}:{bound_port}", flush=True)
        print(f"workers: {workers}", flush=True)
        while not stop.is_set():
            stop.wait(0.5)
            # A crashed child turns into 502s for its shard; better to
            # exit loudly and let the supervisor restart the tier.
            for worker in tier.workers:
                if worker.proc.poll() is not None:
                    tail = "\n".join(worker.output_tail()[-5:])
                    print(
                        f"{worker.key} exited"
                        f" (status {worker.proc.returncode}):\n{tail}",
                        file=sys.stderr,
                        flush=True,
                    )
                    return 1
        return 0
    except KeyboardInterrupt:
        return 0
    finally:
        tier.stop()
        for signum, handler in previous.items():
            try:
                signal.signal(signum, handler)
            except (ValueError, OSError):
                pass
