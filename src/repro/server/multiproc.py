"""Pre-fork multi-worker serving tier: N processes, one dataspace.

``imprecise serve --http HOST:PORT --workers N`` turns the single-process
front into a small production tier:

* **N worker subprocesses**, each a full ``imprecise serve --http`` on an
  ephemeral loopback port, all sharing one store directory and (when
  configured) one ``--cache-dir`` — safe because
  :class:`~repro.dbms.cache_store.AnswerCacheStore` takes its writes in
  ``BEGIN IMMEDIATE`` transactions with bounded busy retries and
  :class:`~repro.dbms.service.DataspaceService` re-reads documents a
  sibling process invalidated (the cross-process version fence);
* a **parent acceptor/router** (:class:`RouterApp` on the same asyncio
  :class:`~repro.server.http.HTTPServer` core) that proxies each request
  to a worker over pooled keep-alive connections;
* **consistent-hash document→worker sharding**
  (:class:`ConsistentHashRing`): every request that names a document
  (``/query``, ``/batch``, ``/aggregate``, ``/feedback``,
  ``/documents/{name}``…, and ``/integrate`` by its *output*) lands on
  the same worker every time, so each worker's in-memory layers —
  materialized documents, compiled engines, event-probability caches —
  stay hot for *its* shard instead of every worker re-deriving every
  document.  Requests without document affinity (``/search``,
  ``/documents``, ``/healthz``) round-robin;
* **graceful drain**: SIGTERM stops the router's accept loop, lets
  in-flight proxied requests finish, then SIGTERMs the children (each of
  which runs its own graceful shutdown).

``GET /stats`` on the router returns ``{"router": …, "ring": …,
"supervisor": …, "workers": [each worker's full /stats dict]}`` — the
router's own per-endpoint counters/latency histograms plus every
worker's, so one scrape sees the whole tier (``docs/http_api.md``).

**The tier is self-healing.**  A :class:`WorkerSupervisor` daemon thread
watches the children: a dead child is ejected from routing at once (its
:class:`CircuitBreaker` is forced open) and respawned with bounded
exponential backoff; consecutive proxy failures to a live-but-wedged
child trip the same breaker.  While a breaker is open the worker's shard
reroutes deterministically to the healthy members, and the supervisor
probes the child's ``/healthz`` until a pass re-admits it.  A crashed
worker therefore costs a brief blip for its shard, never permanent 502s
and never the router's life.

Sharding is an *affinity* optimization, never a correctness requirement:
any worker can serve any document (shared store, shared cache, version
fence), which is what makes worker membership changes across restarts
safe — a document whose shard moved is simply re-priced or served from
the shared persistent cache by its new owner.
"""

from __future__ import annotations

import asyncio
import bisect
import hashlib
import http.client
import json
import os
import signal
import subprocess
import sys
import threading
import time
from collections import deque
from pathlib import Path
from typing import Callable, Optional, Sequence

from ..errors import ImpreciseError
from .app import HTTPMetrics, route_label
from .http import (
    BackgroundServer,
    HTTPRequest,
    HTTPResponse,
    HTTPServer,
    json_response,
)

__all__ = [
    "CircuitBreaker",
    "ConsistentHashRing",
    "MultiProcServer",
    "RouterApp",
    "WorkerProcess",
    "WorkerSupervisor",
    "run_multiproc",
]

#: Virtual points per ring member: enough that a 4–8 worker ring is
#: statistically even (±a few percent), few enough that building the
#: ring is microseconds.
RING_REPLICAS = 64

#: Idle proxied connections the router retains per worker.
POOL_MAX_IDLE = 8

#: Consecutive proxy failures that eject a worker from routing (its
#: circuit breaker opens) until a ``/healthz`` probe re-admits it.
BREAKER_THRESHOLD = 3

#: Endpoints that read a document name out of the JSON body, and the
#: field that carries it.  ``/integrate`` routes by its *output* — that
#: is the document it writes and invalidates, so the write lands on the
#: worker that will serve the follow-up queries.
_BODY_AFFINITY = {
    "/query": "document",
    "/batch": "document",
    "/aggregate": "document",
    "/feedback": "document",
    "/integrate": "output",
}


class ConsistentHashRing:
    """Consistent hashing of string keys onto a fixed member set.

    Each member contributes ``replicas`` SHA-256 points on a ring; a key
    maps to the member owning the first point at or after the key's own
    hash.  Properties the router depends on (pinned by tests):

    * deterministic — same members, same key, same owner, on every
      platform and in every process (``hashlib.sha256``, not the
      per-process-salted builtin ``hash``);
    * stable under *key* churn — adding or deleting documents never
      moves any other document's owner (membership did not change);
    * minimal movement under *membership* churn — going from N to N+1
      members re-homes roughly ``1/(N+1)`` of the keys, not all of them.
    """

    def __init__(self, members: Sequence[str], *, replicas: int = RING_REPLICAS):
        members = list(members)
        if not members:
            raise ValueError("ring needs at least one member")
        if len(set(members)) != len(members):
            raise ValueError(f"duplicate ring members: {members!r}")
        if replicas < 1:
            raise ValueError(f"replicas must be >= 1, got {replicas}")
        self.members = tuple(members)
        self.replicas = replicas
        points = []
        for member in members:
            for replica in range(replicas):
                blob = hashlib.sha256(
                    f"{member}#{replica}".encode("utf-8")
                ).digest()
                points.append((int.from_bytes(blob[:8], "big"), member))
        points.sort()
        self._points = points
        self._keys = [point for point, _ in points]

    def member_for(self, key: str) -> str:
        """The member that owns ``key``."""
        point = int.from_bytes(
            hashlib.sha256(key.encode("utf-8")).digest()[:8], "big"
        )
        index = bisect.bisect_right(self._keys, point) % len(self._points)
        return self._points[index][1]

    def __repr__(self) -> str:
        return (
            f"ConsistentHashRing(members={list(self.members)!r},"
            f" replicas={self.replicas})"
        )


class CircuitBreaker:  # impreciselint: guarded-by=_lock
    """Per-worker routing eligibility, shared between two threads.

    The router's event loop records proxy outcomes
    (:meth:`record_failure` / :meth:`record_success`); the supervisor
    thread ejects dead children (:meth:`force_open`) and re-admits them
    after a passing health probe (:meth:`readmit`).  ``open`` means the
    worker receives no routed traffic — its shard reroutes to healthy
    members — until re-admission.  All transitions are counted, and
    :meth:`state` is what ``GET /stats`` exposes per worker.
    """

    def __init__(self, *, threshold: int = BREAKER_THRESHOLD):
        if threshold < 1:
            raise ValueError(f"threshold must be >= 1, got {threshold}")
        self.threshold = threshold
        self._lock = threading.Lock()
        self._open = False
        self._failures = 0
        self.trips = 0
        self.readmissions = 0

    @property
    def available(self) -> bool:
        """Whether the worker is currently eligible for routing."""
        with self._lock:
            return not self._open

    def record_success(self) -> None:
        """A proxied request completed; the failure streak resets."""
        with self._lock:
            self._failures = 0

    def record_failure(self) -> None:
        """A proxied request failed at the transport level; ``threshold``
        consecutive failures trip the breaker open."""
        with self._lock:
            self._failures += 1
            if not self._open and self._failures >= self.threshold:
                self._open = True
                self.trips += 1

    def force_open(self) -> None:
        """Eject immediately — the supervisor saw the process die, no
        point burning ``threshold`` requests to learn it."""
        with self._lock:
            if not self._open:
                self._open = True
                self.trips += 1

    def readmit(self) -> None:
        """Close the breaker after a passing health probe."""
        with self._lock:
            if self._open:
                self._open = False
                self.readmissions += 1
            self._failures = 0

    def state(self) -> dict:
        """The breaker as ``/stats`` reports it."""
        with self._lock:
            return {
                "state": "open" if self._open else "closed",
                "consecutive_failures": self._failures,
                "threshold": self.threshold,
                "trips": self.trips,
                "readmissions": self.readmissions,
            }


class _UpstreamConnection:
    """One keep-alive proxied connection to a worker (router-internal)."""

    def __init__(self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter):
        self.reader = reader
        self.writer = writer
        self.reused = False  # True once it has served a proxied request

    async def read_response(self) -> tuple:
        """``(status, headers, body)`` of one worker response.  Workers
        always frame with ``Content-Length`` (the HTTP core sets it on
        every response), so no chunked decoding is needed."""
        head = await self.reader.readuntil(b"\r\n\r\n")
        lines = head[:-4].decode("latin-1").split("\r\n")
        parts = lines[0].split(" ", 2)
        status = int(parts[1])
        headers = {}
        for line in lines[1:]:
            name, _, value = line.partition(":")
            headers[name.strip().lower()] = value.strip()
        length = int(headers.get("content-length", "0"))
        body = await self.reader.readexactly(length) if length else b""
        return status, headers, body

    def close(self) -> None:
        self.writer.close()


class _Upstream:
    """A worker as the router sees it: an address, a circuit breaker,
    and a small pool of idle keep-alive connections.  The pool is only
    touched from the router's event loop thread, so it needs no locking;
    the breaker carries its own lock, and the supervisor updates
    ``host``/``port`` after a respawn (plain attribute swaps, with the
    stale pool closed on the event loop via
    :meth:`~repro.server.http.BackgroundServer.call_soon`)."""

    def __init__(
        self,
        key: str,
        host: str,
        port: int,
        *,
        max_idle: int = POOL_MAX_IDLE,
        breaker_threshold: int = BREAKER_THRESHOLD,
    ):
        self.key = key
        self.host = host
        self.port = port
        self.max_idle = max_idle
        self.breaker = CircuitBreaker(threshold=breaker_threshold)
        self._idle: list = []
        self.connects = 0  # diagnostics: fresh TCP connections dialed

    async def acquire(self) -> _UpstreamConnection:
        while self._idle:
            conn = self._idle.pop()
            if conn.writer.is_closing():
                conn.close()
                continue
            return conn
        reader, writer = await asyncio.open_connection(self.host, self.port)
        self.connects += 1
        return _UpstreamConnection(reader, writer)

    def release(self, conn: _UpstreamConnection) -> None:
        conn.reused = True
        if len(self._idle) < self.max_idle and not conn.writer.is_closing():
            self._idle.append(conn)
        else:
            conn.close()

    def close_idle(self) -> None:
        idle, self._idle = self._idle, []
        for conn in idle:
            conn.close()


class RouterApp:
    """The parent acceptor's async handler: shard, proxy, observe.

    Plugs into :class:`~repro.server.http.HTTPServer` exactly like
    :class:`~repro.server.app.ServerApp` does; instead of calling a
    service it forwards the raw request to a worker and relays the
    response.  A dead pooled connection (worker restarted its keep-alive)
    is retried once on a fresh connection when that cannot double-apply
    a write — the same idempotency rule as
    :class:`~repro.server.client.DataspaceClient` — otherwise the caller
    gets a ``502 bad_gateway``.
    """

    def __init__(self, upstreams: Sequence[_Upstream], *, slow_ms: int = 500):
        if not upstreams:
            raise ValueError("router needs at least one upstream worker")
        self.upstreams = list(upstreams)
        self.ring = ConsistentHashRing([u.key for u in self.upstreams])
        self._by_key = {u.key: u for u in self.upstreams}
        self.metrics = HTTPMetrics(slow_ms=slow_ms)
        self._in_flight = 0
        self._round_robin = 0
        #: Cached reroute rings, one per healthy-member subset — tiny
        #: (subsets of a handful of workers) and rebuilt only on a
        #: membership-health change.
        self._reroute_rings: dict = {}
        #: Set by :class:`MultiProcServer` when supervision is on; the
        #: snapshot lands in the ``supervisor`` section of ``/stats``.
        self.supervisor_stats: Optional[Callable[[], dict]] = None

    # -- routing ------------------------------------------------------------

    def _affinity(self, request: HTTPRequest) -> Optional[str]:
        """The document name this request has affinity to, or ``None``
        for round-robin (no name, or a body the worker will 400 anyway)."""
        path = request.path.rstrip("/") or "/"
        parts = path.strip("/").split("/")
        if len(parts) >= 2 and parts[0] == "documents":
            return parts[1]
        field = _BODY_AFFINITY.get(path)
        if field is not None and request.method == "POST":
            try:
                body = request.json()
            except (ValueError, UnicodeDecodeError):
                return None
            if isinstance(body, dict):
                name = body.get(field)
                if isinstance(name, str):
                    return name
        return None

    def worker_for(self, request: HTTPRequest) -> _Upstream:
        available = [u for u in self.upstreams if u.breaker.available]
        name = self._affinity(request)
        if name is not None:
            owner = self._by_key[self.ring.member_for(name)]
            if owner.breaker.available or not available:
                return owner
            # The shard's owner is ejected: reroute via a ring over the
            # currently healthy members, so every request for the same
            # document lands on the same stand-in (its in-memory layers
            # warm up for the orphaned shard instead of scattering)
            # until the owner is re-admitted.
            keys = tuple(u.key for u in available)
            ring = self._reroute_rings.get(keys)
            if ring is None:
                ring = ConsistentHashRing(keys)
                self._reroute_rings[keys] = ring
            return self._by_key[ring.member_for(name)]
        if not available:
            # Every breaker open: fail forward to the ejected workers —
            # a 502 with a cause beats refusing to even try.
            available = self.upstreams
        upstream = available[self._round_robin % len(available)]
        self._round_robin += 1
        return upstream

    def upstream_for(self, key: str) -> _Upstream:
        """The upstream registered under ``key`` (supervisor hook)."""
        return self._by_key[key]

    # -- handling -----------------------------------------------------------

    async def __call__(self, request: HTTPRequest) -> HTTPResponse:
        label = route_label(request.method, request.path)
        self._in_flight += 1
        start = time.monotonic()
        try:
            if request.method == "GET" and (
                request.path.rstrip("/") or "/"
            ) == "/stats":
                response = await self._stats()
            else:
                response = await self._forward(self.worker_for(request), request)
        finally:
            self._in_flight -= 1
        self.metrics.observe(label, time.monotonic() - start, response.status)
        return response

    async def _forward(
        self, upstream: _Upstream, request: HTTPRequest
    ) -> HTTPResponse:
        body = request.body
        headers = {
            "host": f"{upstream.host}:{upstream.port}",
            "content-length": str(len(body)),
        }
        content_type = request.headers.get("content-type")
        if content_type:
            headers["content-type"] = content_type
        head = f"{request.method} {request.target} HTTP/1.1\r\n" + "".join(
            f"{name}: {value}\r\n" for name, value in headers.items()
        )
        payload = head.encode("latin-1") + b"\r\n" + body
        idempotent = request.method in ("GET", "PUT", "DELETE")
        error: Optional[BaseException] = None
        for attempt in (1, 2):
            try:
                conn = await upstream.acquire()
            except OSError as failure:
                # Connect refused/reset: the worker is gone — that is a
                # gateway failure, not an internal router error.
                error = failure
                break
            reused = conn.reused
            sent = False
            try:
                conn.writer.write(payload)
                await conn.writer.drain()
                sent = True
                status, response_headers, response_body = (
                    await conn.read_response()
                )
            except (ConnectionError, OSError, EOFError, ValueError,
                    asyncio.IncompleteReadError) as failure:
                conn.close()
                error = failure
                # Retry only a *pooled* connection that may simply have
                # gone stale, and only when a replay cannot double-apply
                # a non-idempotent write (same rule as DataspaceClient).
                if attempt == 1 and reused and (not sent or idempotent):
                    continue
                break
            upstream.release(conn)
            upstream.breaker.record_success()
            response = HTTPResponse(status=status, body=response_body)
            worker_type = response_headers.get("content-type")
            if worker_type:
                response.content_type = worker_type
            return response
        upstream.breaker.record_failure()
        return json_response(
            {
                "error": {
                    "type": "bad_gateway",
                    "message": f"worker {upstream.key} unreachable: {error}",
                }
            },
            status=502,
        )

    async def _stats(self) -> HTTPResponse:
        """One scrape for the whole tier: router metrics + ring layout +
        every worker's own ``GET /stats`` document."""
        probe = HTTPRequest(
            method="GET", target="/stats", path="/stats", query={}, headers={}
        )
        responses = await asyncio.gather(
            *(self._forward(upstream, probe) for upstream in self.upstreams)
        )
        workers = []
        for upstream, response in zip(self.upstreams, responses):
            try:
                payload = json.loads(response.body.decode("utf-8"))
            except (ValueError, UnicodeDecodeError):
                payload = {"error": {"type": "bad_gateway",
                                     "message": "unreadable worker stats"}}
            if not isinstance(payload, dict):
                payload = {"stats": payload}
            workers.append(
                {
                    "worker": upstream.key,
                    "address": f"{upstream.host}:{upstream.port}",
                    "pool_connects": upstream.connects,
                    "breaker": upstream.breaker.state(),
                    "stats": payload,
                }
            )
        payload = {
            "router": self.metrics.snapshot(in_flight=self._in_flight - 1),
            "ring": {
                "workers": list(self.ring.members),
                "replicas": self.ring.replicas,
                "available": [
                    u.key for u in self.upstreams if u.breaker.available
                ],
            },
            "workers": workers,
        }
        if self.supervisor_stats is not None:
            payload["supervisor"] = self.supervisor_stats()
        return json_response(payload)

    def close_idle(self) -> None:
        for upstream in self.upstreams:
            upstream.close_idle()


class WorkerProcess:
    """One ``imprecise serve --http`` child on an ephemeral port.

    The port is parsed from the child's stable ``serving on
    http://HOST:PORT`` startup line; stdout/stderr are drained by
    daemon threads into bounded rings so a chatty child can never fill
    a pipe buffer and wedge, and the last lines are available for
    diagnostics when a child dies."""

    def __init__(
        self,
        index: int,
        argv: Sequence[str],
        *,
        env: Optional[dict] = None,
        startup_timeout: float = 30.0,
    ):
        self.index = index
        self.key = f"worker-{index}"
        self.proc = subprocess.Popen(
            list(argv),
            stdout=subprocess.PIPE,
            stderr=subprocess.PIPE,
            text=True,
            env=env,
        )
        self._output: deque = deque(maxlen=50)
        banner: dict = {}

        def _read_banner() -> None:
            banner["line"] = self.proc.stdout.readline()

        reader = threading.Thread(target=_read_banner, daemon=True)
        reader.start()
        reader.join(startup_timeout)
        line = (banner.get("line") or "").strip()
        if not line.startswith("serving on http://"):
            self.proc.kill()
            try:
                _, stderr = self.proc.communicate(timeout=5)
            except subprocess.TimeoutExpired:
                stderr = ""
            raise ImpreciseError(
                f"{self.key} failed to start (got {line!r}):"
                f" {(stderr or '').strip()[-500:]}"
            )
        address = line[len("serving on http://"):]
        host, _, port_text = address.rpartition(":")
        self.host = host.strip("[]")
        self.port = int(port_text)
        for stream in (self.proc.stdout, self.proc.stderr):
            threading.Thread(
                target=self._drain, args=(stream,), daemon=True
            ).start()

    def _drain(self, stream) -> None:
        try:
            for line in stream:
                self._output.append(line.rstrip("\n"))
        except ValueError:
            pass  # stream closed under us during shutdown

    def output_tail(self) -> list:
        """The child's most recent output lines (diagnostics)."""
        return list(self._output)

    def stop(self, timeout: float = 30.0) -> Optional[int]:
        """SIGTERM (the child drains gracefully), escalating to SIGKILL
        past ``timeout``; returns the exit status."""
        if self.proc.poll() is None:
            self.proc.send_signal(signal.SIGTERM)
        try:
            return self.proc.wait(timeout)
        except subprocess.TimeoutExpired:
            self.proc.kill()
            return self.proc.wait(5)

    def __repr__(self) -> str:
        return f"WorkerProcess({self.key}, {self.host}:{self.port})"


class WorkerSupervisor:  # impreciselint: guarded-by=_lock
    """Daemon thread that keeps the tier's children alive and routed.

    Two duties, one loop:

    * **respawn** — a child whose process exited is ejected from routing
      at once (breaker forced open) and replaced with a fresh process,
      under bounded exponential backoff per slot so a crash-looping
      child cannot busy-spin the tier (the backoff resets when the slot
      passes a health probe);
    * **re-admission** — every ``probe_interval`` seconds each ejected
      worker whose process is alive gets a blocking ``GET /healthz``
      (plain :mod:`http.client`, this is not the router's event loop);
      a 200 closes its breaker and traffic returns.

    The counters (``restarts``/``restart_failures``/``probes``/
    ``readmissions``) feed the ``supervisor`` section of the router's
    ``GET /stats``.
    """

    def __init__(
        self,
        tier: "MultiProcServer",
        *,
        poll_interval: float = 0.1,
        probe_interval: float = 0.25,
        backoff_initial: float = 0.2,
        backoff_max: float = 5.0,
        probe_timeout: float = 2.0,
    ):
        self.tier = tier
        self.poll_interval = poll_interval
        self.probe_interval = probe_interval
        self.backoff_initial = backoff_initial
        self.backoff_max = backoff_max
        self.probe_timeout = probe_timeout
        self._lock = threading.Lock()
        self._stop = threading.Event()
        self._thread: Optional[threading.Thread] = None
        self.restarts = 0
        self.restart_failures = 0
        self.probes = 0
        self.readmissions = 0

    # -- lifecycle ----------------------------------------------------------

    def start(self) -> None:
        """Start the supervision thread (idempotent)."""
        with self._lock:
            if self._thread is not None:
                return
            thread = threading.Thread(
                target=self._run, name="worker-supervisor", daemon=True
            )
            self._thread = thread
        thread.start()

    def stop(self, timeout: float = 10.0) -> None:
        """Stop supervising — must run *before* the tier reaps its
        children, or a planned shutdown looks like a crash to respawn."""
        self._stop.set()
        with self._lock:
            thread, self._thread = self._thread, None
        if thread is not None:
            thread.join(timeout)

    def stats_snapshot(self) -> dict:
        """The ``supervisor`` section of the router's ``/stats``."""
        with self._lock:
            return {
                "restarts": self.restarts,
                "restart_failures": self.restart_failures,
                "probes": self.probes,
                "readmissions": self.readmissions,
                "probe_interval_s": self.probe_interval,
                "backoff_max_s": self.backoff_max,
            }

    # -- the loop -----------------------------------------------------------

    def _run(self) -> None:
        # Backoff state lives on the loop's own stack: slot -> current
        # delay, and slot -> the monotonic instant gating its next spawn.
        delays: dict = {}
        retry_at: dict = {}
        next_probe = 0.0
        while not self._stop.is_set():
            if self._stop.wait(self.poll_interval):
                return
            now = time.monotonic()
            for slot, worker in enumerate(list(self.tier.workers)):
                if worker.proc.poll() is None:
                    continue
                router = self.tier.router
                if router is not None:
                    router.upstream_for(worker.key).breaker.force_open()
                if now < retry_at.get(slot, 0.0):
                    continue
                delay = delays.get(slot, self.backoff_initial)
                retry_at[slot] = now + delay
                delays[slot] = min(delay * 2.0, self.backoff_max)
                tail = "\n".join(worker.output_tail()[-5:])
                self._log(
                    f"{worker.key} exited"
                    f" (status {worker.proc.returncode}); respawning:\n{tail}"
                )
                try:
                    self.tier.respawn_worker(slot)
                except (ImpreciseError, OSError) as error:
                    with self._lock:
                        self.restart_failures += 1
                    self._log(f"{worker.key} respawn failed: {error}")
                    continue
                with self._lock:
                    self.restarts += 1
            if now >= next_probe:
                next_probe = now + self.probe_interval
                self._probe_round(delays)

    def _probe_round(self, delays: dict) -> None:
        for slot, worker in enumerate(list(self.tier.workers)):
            router = self.tier.router
            if router is None or worker.proc.poll() is not None:
                continue  # a dead child belongs to the respawn path
            upstream = router.upstream_for(worker.key)
            if upstream.breaker.available:
                continue
            with self._lock:
                self.probes += 1
            if self._healthy(upstream.host, upstream.port):
                upstream.breaker.readmit()
                delays.pop(slot, None)  # stable again: backoff resets
                with self._lock:
                    self.readmissions += 1
                self._log(f"{worker.key} passed /healthz; re-admitted")

    def _healthy(self, host: str, port: int) -> bool:
        try:
            conn = http.client.HTTPConnection(
                host, port, timeout=self.probe_timeout
            )
            try:
                conn.request("GET", "/healthz")
                response = conn.getresponse()
                response.read()
                return response.status == 200
            finally:
                conn.close()
        except (OSError, http.client.HTTPException):
            return False

    def _log(self, message: str) -> None:
        print(f"supervisor: {message}", file=sys.stderr, flush=True)


def _worker_argv(
    store_dir,
    *,
    cache_dir=None,
    worker_args: Sequence[str] = (),
) -> list:
    argv = [sys.executable, "-m", "repro", "serve", str(store_dir),
            "--http", "127.0.0.1:0"]
    if cache_dir is not None:
        argv += ["--cache-dir", str(cache_dir)]
    argv += list(worker_args)
    return argv


def _worker_env() -> dict:
    """The spawn environment: inherit, but make sure the children can
    import this very package even when it is only on ``sys.path`` via
    ``PYTHONPATH=src`` (tests) rather than installed."""
    env = dict(os.environ)
    package_root = str(Path(__file__).resolve().parents[2])
    existing = env.get("PYTHONPATH", "")
    if package_root not in existing.split(os.pathsep):
        env["PYTHONPATH"] = (
            package_root + (os.pathsep + existing if existing else "")
        )
    return env


class MultiProcServer:
    """The whole tier as one object: spawn N workers, run the router.

    The embedding shape tests and benchmarks use::

        tier = MultiProcServer(store_dir, workers=4, cache_dir=cache_dir)
        host, port = tier.start()
        ...                             # drive it with DataspaceClient
        tier.stop()

    ``stop()`` halts supervision first (so a planned shutdown is not
    mistaken for a crash to respawn), drains the router (in-flight
    proxied requests finish, new connections are refused), then SIGTERMs
    the children and waits for their own graceful exits.
    Context-manager friendly.

    ``supervise=False`` runs the PR-8 static tier — no respawns, no
    breakers opening from the supervisor side (proxy failures can still
    trip them) — which some tests use to observe raw 502 behavior.
    """

    def __init__(
        self,
        store_dir,
        *,
        workers: int = 4,
        cache_dir=None,
        host: str = "127.0.0.1",
        port: int = 0,
        worker_args: Sequence[str] = (),
        slow_ms: int = 500,
        startup_timeout: float = 30.0,
        supervise: bool = True,
        breaker_threshold: int = BREAKER_THRESHOLD,
        probe_interval: float = 0.25,
        backoff_initial: float = 0.2,
        backoff_max: float = 5.0,
    ):
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        self.store_dir = store_dir
        self.cache_dir = cache_dir
        self.n_workers = workers
        self.host = host
        self.port = port
        self.worker_args = tuple(worker_args)
        self.slow_ms = slow_ms
        self.startup_timeout = startup_timeout
        self.supervise = supervise
        self.breaker_threshold = breaker_threshold
        self.probe_interval = probe_interval
        self.backoff_initial = backoff_initial
        self.backoff_max = backoff_max
        self.workers: list = []
        self.router: Optional[RouterApp] = None
        self.supervisor: Optional[WorkerSupervisor] = None
        self._background: Optional[BackgroundServer] = None

    def start(self) -> tuple:
        """Spawn the children, start the router; returns the router's
        bound ``(host, port)``."""
        argv = _worker_argv(
            self.store_dir,
            cache_dir=self.cache_dir,
            worker_args=self.worker_args,
        )
        env = _worker_env()
        try:
            for index in range(self.n_workers):
                self.workers.append(
                    WorkerProcess(
                        index, argv, env=env,
                        startup_timeout=self.startup_timeout,
                    )
                )
        except BaseException:
            self._stop_workers()
            raise
        self.router = RouterApp(
            [
                _Upstream(
                    w.key, w.host, w.port,
                    breaker_threshold=self.breaker_threshold,
                )
                for w in self.workers
            ],
            slow_ms=self.slow_ms,
        )
        self._background = BackgroundServer(self.router, self.host, self.port)
        try:
            bound = self._background.start()
        except BaseException:
            self._stop_workers()
            raise
        self.host, self.port = bound
        if self.supervise:
            self.supervisor = WorkerSupervisor(
                self,
                probe_interval=self.probe_interval,
                backoff_initial=self.backoff_initial,
                backoff_max=self.backoff_max,
            )
            self.router.supervisor_stats = self.supervisor.stats_snapshot
            self.supervisor.start()
        return bound

    def respawn_worker(self, slot: int) -> WorkerProcess:
        """Replace the dead child in ``slot`` with a fresh process and
        repoint its upstream (same ring key, new address; the stale
        connection pool is closed on the router's event loop).  The
        supervisor calls this; raises :class:`ImpreciseError` when the
        spawn itself fails."""
        old = self.workers[slot]
        old.stop(timeout=5.0)  # reap the zombie (already exited)
        argv = _worker_argv(
            self.store_dir,
            cache_dir=self.cache_dir,
            worker_args=self.worker_args,
        )
        worker = WorkerProcess(
            old.index, argv, env=_worker_env(),
            startup_timeout=self.startup_timeout,
        )
        self.workers[slot] = worker
        if self.router is not None:
            upstream = self.router.upstream_for(worker.key)
            upstream.host = worker.host
            upstream.port = worker.port
            if self._background is not None:
                self._background.call_soon(upstream.close_idle)
        return worker

    def _stop_workers(self) -> None:
        workers, self.workers = self.workers, []
        for worker in workers:
            worker.stop()

    def stop(self, grace: float = 5.0) -> None:
        """Halt supervision, drain the router, then stop the children.
        Idempotent."""
        if self.supervisor is not None:
            supervisor, self.supervisor = self.supervisor, None
            supervisor.stop()
        if self._background is not None:
            background, self._background = self._background, None
            background.stop(grace=grace)
        self._stop_workers()

    def __enter__(self) -> "MultiProcServer":
        self.start()
        return self

    def __exit__(self, *exc_info) -> None:
        self.stop()


def run_multiproc(
    store_dir,
    host: str,
    port: int,
    workers: int,
    *,
    cache_dir=None,
    worker_args: Sequence[str] = (),
    slow_ms: int = 500,
) -> int:
    """The blocking CLI entry (``imprecise serve --http --workers N``):
    run the tier until SIGINT/SIGTERM, then drain router and children.

    Prints the same stable ``serving on http://HOST:PORT`` first line as
    the single-process front (clients parsing it cannot tell the tiers
    apart), followed by one ``workers: N`` line."""
    tier = MultiProcServer(
        store_dir,
        workers=workers,
        cache_dir=cache_dir,
        host=host,
        port=port,
        worker_args=worker_args,
        slow_ms=slow_ms,
    )
    stop = threading.Event()

    def _signalled(signum, frame) -> None:
        stop.set()

    previous = {}
    for signum in (signal.SIGINT, signal.SIGTERM):
        try:
            previous[signum] = signal.signal(signum, _signalled)
        except (ValueError, OSError):
            pass  # not the main thread / unsupported platform
    try:
        bound_host, bound_port = tier.start()
        display = f"[{bound_host}]" if ":" in bound_host else bound_host
        print(f"serving on http://{display}:{bound_port}", flush=True)
        print(f"workers: {workers}", flush=True)
        # Crashed children are the supervisor's problem now: it ejects
        # them from routing, respawns them with backoff, and re-admits
        # them after a passing /healthz — the router never exits for a
        # child's death.
        while not stop.is_set():
            stop.wait(0.5)
        return 0
    except KeyboardInterrupt:
        return 0
    finally:
        tier.stop()
        for signum, handler in previous.items():
            try:
                signal.signal(signum, handler)
            except (ValueError, OSError):
                pass
