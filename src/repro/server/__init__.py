"""HTTP network front for the dataspace service.

The ROADMAP's "actual network front (HTTP/asyncio) over
``DataspaceService``": a dependency-free asyncio HTTP/1.1 server
(:mod:`repro.server.http`), the JSON API routing layer
(:mod:`repro.server.app`), the exact-Fraction wire format
(:mod:`repro.server.wire`) and a blocking stdlib client
(:mod:`repro.server.client`).  ``imprecise serve --http HOST:PORT`` is
the command-line entry point; ``docs/http_api.md`` documents the wire
protocol.
"""

from .app import ServerApp
from .client import DataspaceClient, ServerError
from .http import BackgroundServer, HTTPRequest, HTTPResponse, HTTPServer

__all__ = [
    "ServerApp",
    "DataspaceClient",
    "ServerError",
    "BackgroundServer",
    "HTTPServer",
    "HTTPRequest",
    "HTTPResponse",
]
