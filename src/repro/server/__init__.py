"""HTTP network front for the dataspace service.

The ROADMAP's "actual network front (HTTP/asyncio) over
``DataspaceService``": a dependency-free asyncio HTTP/1.1 server
(:mod:`repro.server.http`), the JSON API routing layer
(:mod:`repro.server.app`), the exact-Fraction wire format
(:mod:`repro.server.wire`), a blocking stdlib client with an optional
connection pool (:mod:`repro.server.client`), and the pre-fork
multi-worker tier with consistent-hash sharding
(:mod:`repro.server.multiproc`).  ``imprecise serve --http HOST:PORT
[--workers N]`` is the command-line entry point; ``docs/http_api.md``
documents the wire protocol.
"""

from .app import ServerApp
from .client import DataspaceClient, DataspaceClientPool, ServerError
from .http import BackgroundServer, HTTPRequest, HTTPResponse, HTTPServer
from .multiproc import ConsistentHashRing, MultiProcServer, RouterApp

__all__ = [
    "ServerApp",
    "DataspaceClient",
    "DataspaceClientPool",
    "ServerError",
    "BackgroundServer",
    "HTTPServer",
    "HTTPRequest",
    "HTTPResponse",
    "ConsistentHashRing",
    "MultiProcServer",
    "RouterApp",
]
