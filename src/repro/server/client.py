"""Blocking HTTP client for the dataspace front (stdlib ``http.client``).

The counterpart of :mod:`repro.server.app` used by tests, benchmarks and
scripts: one persistent keep-alive connection per
:class:`DataspaceClient`, JSON in, exact Fractions out —
:meth:`~DataspaceClient.query` returns the same
:class:`~repro.query.ranking.RankedAnswer` (same Fractions, same order)
an in-process :class:`~repro.dbms.service.DataspaceService` call would.

Not a connection pool: one instance drives one connection serially, so
share nothing and give each thread its own client (they are cheap).  A
server restart surfaces as a transparent single reconnect; structured
server errors raise :class:`ServerError` carrying the HTTP status and
the server-side error type, except two that get typed treatment:

- **504** (``deadline_exceeded``) raises
  :class:`~repro.errors.DeadlineExceededError` so callers handle a
  blown ``deadline_ms`` budget the same way in-process callers do.
- **503** (overload shedding) is replayed up to ``retry_503`` times —
  opt-in, idempotent requests only — sleeping the server's
  ``Retry-After`` hint (capped at :data:`RETRY_AFTER_CAP` seconds).
"""

from __future__ import annotations

import json
import threading
import time
from contextlib import contextmanager
from http.client import HTTPConnection, HTTPException
from typing import Iterator, Optional, Sequence, Tuple

from fractions import Fraction

from ..errors import DeadlineExceededError, ImpreciseError, WireFormatError
from ..query.fusion import FusedAnswer
from ..query.ranking import RankedAnswer
from .wire import (
    decode_aggregate_distribution,
    decode_answer,
    decode_fraction,
    decode_fused_answer,
    encode_fraction,
)

__all__ = [
    "DataspaceClient",
    "DataspaceClientPool",
    "RETRY_AFTER_CAP",
    "ServerError",
]

#: Ceiling on how long a single ``Retry-After`` hint can stall a
#: retried request — a misconfigured (or adversarial) server must not
#: be able to park the client for minutes.
RETRY_AFTER_CAP = 5.0

# Methods safe to replay after the request already went out: the
# server may have processed a lost-response request, so only requests
# whose double application is a no-op qualify (matches the reconnect
# rule in ``_exchange`` and the 503 retry gate).
_IDEMPOTENT = frozenset({"GET", "PUT", "DELETE"})


class ServerError(ImpreciseError):
    """A structured error response from the dataspace server."""

    def __init__(self, status: int, error_type: str, message: str):
        super().__init__(f"[{status} {error_type}] {message}")
        self.status = status
        self.error_type = error_type


class DataspaceClient:
    """Talk to an ``imprecise serve --http`` server.

    >>> client = DataspaceClient("127.0.0.1", 8080)   # doctest: +SKIP
    >>> client.query("ab", "//person/tel").as_table() # doctest: +SKIP

    Context-manager friendly; :meth:`close` drops the connection.
    """

    def __init__(
        self,
        host: str,
        port: int,
        *,
        timeout: float = 60.0,
        retry_503: int = 0,
    ):
        if retry_503 < 0:
            raise ValueError(f"retry_503 must be >= 0, got {retry_503}")
        self.host = host
        self.port = port
        self.timeout = timeout
        self.retry_503 = retry_503
        self._conn: Optional[HTTPConnection] = None

    # -- transport ----------------------------------------------------------

    def _connection(self) -> HTTPConnection:
        if self._conn is None:
            self._conn = HTTPConnection(self.host, self.port, timeout=self.timeout)
        return self._conn

    def _exchange(
        self,
        method: str,
        path: str,
        body: Optional[bytes],
        headers: dict,
    ) -> Tuple[int, Optional[str], str]:
        """One request/response round trip with a single transparent
        reconnect; returns ``(status, retry_after_header, text)``."""
        for attempt in (1, 2):
            conn = self._connection()
            sent = False
            try:
                conn.request(method, path, body=body, headers=headers)
                sent = True
                response = conn.getresponse()
                text = response.read().decode("utf-8")
                return response.status, response.getheader("Retry-After"), text
            except (ConnectionError, HTTPException, OSError):
                # A dead keep-alive connection (server restarted, idle
                # timeout): reconnect once — but only when re-sending
                # cannot double-apply a write.  A failure during send
                # means the server processed nothing; after the request
                # went out, only idempotent methods are safe to replay
                # (POST /feedback applied twice is a different posterior).
                self.close()
                if attempt == 2 or (sent and method not in _IDEMPOTENT):
                    raise
        raise AssertionError("unreachable: both exchange attempts returned")

    @staticmethod
    def _retry_delay(retry_after: Optional[str]) -> float:
        """Seconds to sleep before replaying a shed request: the
        server's ``Retry-After`` hint, clamped to
        ``[0, RETRY_AFTER_CAP]`` (0.1s when absent or malformed)."""
        if retry_after is None:
            return 0.1
        try:
            delay = float(retry_after)
        except ValueError:
            return 0.1
        return max(0.0, min(delay, RETRY_AFTER_CAP))

    def _request(
        self,
        method: str,
        path: str,
        payload: Optional[dict] = None,
        *,
        raw_body: Optional[bytes] = None,
    ) -> dict:
        body = raw_body
        headers = {}
        if payload is not None:
            body = json.dumps(payload, ensure_ascii=False).encode("utf-8")
            headers["Content-Type"] = "application/json; charset=utf-8"
        retries = self.retry_503 if method in _IDEMPOTENT else 0
        while True:
            status, retry_after, text = self._exchange(
                method, path, body, headers
            )
            if status == 503 and retries > 0:
                retries -= 1
                time.sleep(self._retry_delay(retry_after))
                continue
            break
        try:
            document = json.loads(text) if text else {}
        except ValueError as error:
            raise WireFormatError(
                f"non-JSON response from server ({status}): {error}"
            ) from None
        if status >= 400:
            error = document.get("error", {}) if isinstance(document, dict) else {}
            message = error.get("message", text.strip())
            if status == 504:
                # The server's deadline budget blew mid-request; give
                # remote callers the same typed signal in-process
                # callers get from the service layer.
                raise DeadlineExceededError(message)
            raise ServerError(status, error.get("type", "unknown"), message)
        if not isinstance(document, dict):
            raise WireFormatError("response body must be a JSON object")
        return document

    def close(self) -> None:
        if self._conn is not None:
            try:
                self._conn.close()
            finally:
                self._conn = None

    def __enter__(self) -> "DataspaceClient":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -- endpoints ----------------------------------------------------------

    def healthz(self) -> dict:
        """Liveness: ``{"status": "ok", "documents": N}``."""
        return self._request("GET", "/healthz")

    def stats(self) -> dict:
        """The server's merged cache counters (same dict
        :meth:`DataspaceService.cache_stats` returns in-process)."""
        return self._request("GET", "/stats")

    def documents(self) -> list:
        """``[{"name": ..., "kind": ...}, ...]`` of stored documents."""
        return self._request("GET", "/documents")["documents"]

    def load(self, name: str, text: str, *, kind: str = "xml") -> dict:
        """Store a document from its serialized text (``kind='pxml'``
        for probabilistic XML)."""
        return self._request(
            "PUT",
            f"/documents/{name}" + ("?kind=pxml" if kind == "pxml" else ""),
            raw_body=text.encode("utf-8"),
        )

    def delete(self, name: str) -> dict:
        """Delete a stored document and its cached answers."""
        return self._request("DELETE", f"/documents/{name}")

    def document_stats(self, name: str) -> dict:
        """Uncertainty census of one document (integer counters)."""
        return self._request("GET", f"/documents/{name}/stats")["stats"]

    def query(
        self, name: str, xpath: str, *, deadline_ms: Optional[int] = None
    ) -> RankedAnswer:
        """Ranked probabilistic answer — exact Fractions, decoded.

        ``deadline_ms`` bounds the server-side evaluation; a blown
        budget raises :class:`~repro.errors.DeadlineExceededError`.
        """
        payload: dict = {"document": name, "xpath": xpath}
        if deadline_ms is not None:
            payload["deadline_ms"] = deadline_ms
        document = self._request("POST", "/query", payload)
        return decode_answer(document["answer"]["items"])

    def aggregate(
        self,
        name: str,
        kind: str,
        target: str,
        *,
        text: Optional[str] = None,
        deadline_ms: Optional[int] = None,
    ) -> dict:
        """Exact aggregate distribution (``count``/``sum``/``min``/
        ``max``/``exists`` over ``//target``), decoded back to
        ``{value: Fraction}`` — bit-identical to the in-process
        :meth:`DataspaceService.aggregate` result."""
        payload = {"document": name, "kind": kind, "target": target}
        if text is not None:
            payload["text"] = text
        if deadline_ms is not None:
            payload["deadline_ms"] = deadline_ms
        document = self._request("POST", "/aggregate", payload)
        return decode_aggregate_distribution(document["distribution"])

    def search(
        self,
        xpath: str,
        *,
        documents: Optional[Sequence[str]] = None,
        glob: Optional[str] = None,
        strategy: str = "prob",
        k: Optional[object] = None,
        weights: Optional[dict] = None,
        deadline_ms: Optional[int] = None,
        allow_partial: bool = False,
    ) -> FusedAnswer:
        """Dataspace-wide fan-out with rank fusion (``POST /search``) —
        the whole store by default, or ``documents=`` / ``glob=``.
        Returns the same :class:`~repro.query.fusion.FusedAnswer` (same
        Fractions, same order, same per-document provenance) an
        in-process :meth:`DataspaceService.query_all` call would.

        ``k`` is the ``rrf`` dampening constant (int or exact rational);
        ``weights`` maps document names to relative prior weights (int,
        ``Fraction``, or ``"num/den"`` string).

        ``deadline_ms`` bounds the whole fan-out; with
        ``allow_partial=True`` a blown budget returns whatever finished
        (the answer's ``partial``/``omitted`` fields say what was cut),
        otherwise it raises
        :class:`~repro.errors.DeadlineExceededError`.
        """
        payload: dict = {"xpath": xpath, "strategy": strategy}
        if deadline_ms is not None:
            payload["deadline_ms"] = deadline_ms
        if allow_partial:
            payload["allow_partial"] = True
        if documents is not None:
            payload["documents"] = list(documents)
        if glob is not None:
            payload["glob"] = glob
        if k is not None:
            payload["k"] = k if isinstance(k, int) else encode_fraction(Fraction(k))
        if weights is not None:
            payload["weights"] = {
                name: value
                if isinstance(value, int)
                else encode_fraction(Fraction(value))
                for name, value in weights.items()
            }
        document = self._request("POST", "/search", payload)
        return decode_fused_answer(document["result"])

    def batch(
        self,
        name: str,
        xpaths: Sequence[str],
        *,
        deadline_ms: Optional[int] = None,
    ) -> list:
        """One bulk-priced workload; answers align with ``xpaths``."""
        payload: dict = {"document": name, "xpaths": list(xpaths)}
        if deadline_ms is not None:
            payload["deadline_ms"] = deadline_ms
        document = self._request("POST", "/batch", payload)
        return [decode_answer(entry["items"]) for entry in document["answers"]]

    def integrate(
        self, name_a: str, name_b: str, output: str, *, rules: str = ""
    ) -> dict:
        """Integrate two stored sources (``rules``: comma list of
        standard rule names); returns the integration report dict."""
        document = self._request(
            "POST",
            "/integrate",
            {"a": name_a, "b": name_b, "output": output, "rules": rules},
        )
        return document["report"]

    def feedback(
        self, name: str, xpath: str, value: str, *, correct: bool = True
    ) -> dict:
        """Apply answer feedback; the step dict's ``prior`` is decoded
        back to an exact :class:`~fractions.Fraction`."""
        document = self._request(
            "POST",
            "/feedback",
            {"document": name, "xpath": xpath, "value": value, "correct": correct},
        )
        step = document["step"]
        step["prior"] = decode_fraction(step["prior"])
        return step

    def __repr__(self) -> str:
        return f"DataspaceClient({self.host!r}, {self.port})"


class DataspaceClientPool:
    """A thread-safe pool of keep-alive :class:`DataspaceClient`\\ s.

    One :class:`DataspaceClient` drives one connection serially; this
    pool lets N threads share warm connections to one server without
    each paying a TCP handshake per request::

        pool = DataspaceClientPool("127.0.0.1", 8080)
        with pool.client() as client:
            answer = client.query("ab", "//person/tel")

    ``max_idle`` bounds how many idle connections are retained (a
    checkout beyond the bound creates a fresh client; returning it
    beyond the bound closes it).  :meth:`close` drains the idle set;
    clients checked out at that moment close on return.
    """

    def __init__(
        self,
        host: str,
        port: int,
        *,
        timeout: float = 60.0,
        max_idle: int = 8,
    ):
        if max_idle < 1:
            raise ValueError(f"max_idle must be >= 1, got {max_idle}")
        self.host = host
        self.port = port
        self.timeout = timeout
        self.max_idle = max_idle
        self._mu = threading.Lock()
        self._idle: list[DataspaceClient] = []
        self._closed = False
        self.created = 0  # diagnostics: fresh clients ever built

    @contextmanager
    def client(self) -> Iterator[DataspaceClient]:
        """Check a client out for the duration of the ``with`` block.

        A client whose request raised a transport-level error is closed
        instead of returned, so a dead keep-alive connection is never
        handed to the next thread (:class:`ServerError` and
        :class:`~repro.errors.DeadlineExceededError` are healthy HTTP
        exchanges and keep the connection pooled).
        """
        with self._mu:
            if self._closed:
                raise ImpreciseError("DataspaceClientPool is closed")
            client = self._idle.pop() if self._idle else None
        if client is None:
            client = DataspaceClient(self.host, self.port, timeout=self.timeout)
            with self._mu:
                self.created += 1
        try:
            yield client
        except (DeadlineExceededError, ServerError, WireFormatError):
            self._release(client)
            raise
        except Exception:
            client.close()
            raise
        else:
            self._release(client)

    def _release(self, client: DataspaceClient) -> None:
        with self._mu:
            if not self._closed and len(self._idle) < self.max_idle:
                self._idle.append(client)
                return
        client.close()

    def close(self) -> None:
        """Close every idle connection; idempotent."""
        with self._mu:
            self._closed = True
            idle, self._idle = self._idle, []
        for client in idle:
            client.close()

    def __enter__(self) -> "DataspaceClientPool":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __repr__(self) -> str:
        with self._mu:
            idle = len(self._idle)
        return (
            f"DataspaceClientPool({self.host!r}, {self.port},"
            f" idle={idle}, created={self.created})"
        )
