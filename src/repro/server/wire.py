"""Exact-Fraction JSON wire format for the HTTP dataspace front.

Probabilities in this repository are exact :class:`~fractions.Fraction`
values, and the whole serving stack's contract is *bit-identical*
answers no matter which layer served them (engine, persistent cache,
network).  JSON has no rational type and its numbers decay to floats, so
every probability crosses the wire as the ``"numerator/denominator"``
string the persistent :class:`~repro.dbms.cache_store.AnswerCacheStore`
already uses — this module reuses that encoding (one code path, one
on-disk/on-wire format) and layers the remaining payload shapes on top:

* ranked answers — ``[[value, "num/den", occurrences], ...]``
  (:func:`encode_answer` / :func:`decode_answer`, re-exported from the
  cache store);
* aggregate count distributions — ``[[count, "num/den"], ...]`` sorted
  by count (:func:`encode_distribution` / :func:`decode_distribution`);
* general aggregate distributions (``sum``/``min``/``max``/``exists``
  values: ints, exact Fractions, or the ``None`` no-match outcome) —
  :func:`encode_aggregate_distribution` /
  :func:`decode_aggregate_distribution`, re-exported from the cache
  store (the persisted rows and the wire share one codec);
* fused fan-out answers (``POST /search``) with per-document
  provenance — each fused item carries ``[document, local rank, local
  probability as "num/den"]`` source triples —
  :func:`encode_fused_answer` / :func:`decode_fused_answer`;
* node statistics, feedback steps and integration reports
  (:func:`encode_node_stats`, :func:`encode_feedback_step`,
  :func:`decode_feedback_step`, :func:`encode_report`).

Decoders are **strict**: they validate shapes and types and raise
:class:`~repro.errors.WireFormatError` on anything off-contract, because
they face network input.  Every decoder is the exact inverse of its
encoder — ``decode(encode(x)) == x`` including Fraction exactness — and
``tests/test_wire.py`` checks that property over thousands of seeded
random payloads.
"""

from __future__ import annotations

from fractions import Fraction
from typing import Mapping

from ..core.engine import IntegrationReport
from ..dbms.cache_store import (
    decode_aggregate_distribution,
    decode_answer,
    decode_fraction,
    encode_aggregate_distribution,
    encode_answer,
    encode_fraction,
)
from ..errors import WireFormatError
from ..feedback.conditioning import FeedbackStep
from ..pxml.stats import NodeStats
from ..query.aggregates import AggregateDistribution
from ..query.fusion import (
    FUSION_STRATEGIES,
    DocumentContribution,
    FusedAnswer,
    FusedItem,
)

__all__ = [
    "WIRE_VERSION",
    "encode_fraction",
    "decode_fraction",
    "encode_answer",
    "decode_answer",
    "encode_distribution",
    "decode_distribution",
    "encode_aggregate_distribution",
    "decode_aggregate_distribution",
    "encode_fused_answer",
    "decode_fused_answer",
    "encode_node_stats",
    "decode_node_stats",
    "encode_feedback_step",
    "decode_feedback_step",
    "encode_report",
]

#: Version of the payload shapes this module layers on top of the
#: cache-store codecs (those are fenced by ``SCHEMA_VERSION``).  Bump on
#: any field addition/removal in the encoders below, and refresh the
#: surface pin — ``impreciselint`` blocks codec edits until both happen
#: together (see docs/development.md).
WIRE_VERSION = 3  # impreciselint: schema-surface=b50b41c9f584


def _require_int(value: object, what: str) -> int:
    if not isinstance(value, int) or isinstance(value, bool):
        raise WireFormatError(f"{what} must be an integer, got {value!r}")
    return value


def _require_str(value: object, what: str) -> str:
    if not isinstance(value, str):
        raise WireFormatError(f"{what} must be a string, got {value!r}")
    return value


def encode_fused_answer(fused: FusedAnswer) -> dict[str, object]:
    """Wire form of a :class:`~repro.query.fusion.FusedAnswer` (the
    ``POST /search`` result): the strategy, the fan-out membership in
    pinned order, the normalized per-document prior, the ``rrf`` ``k``
    constant when the strategy used one, and the fused items — each with
    its exact ``"num/den"`` score and its provenance as ``[document,
    rank, "num/den"]`` source triples (local rank 1-based, local
    probability exact).  A partial answer (deadline expired under
    ``allow_partial``) additionally carries ``omitted`` — the selected
    document names that did not finish — so partiality survives the
    wire explicitly; the field is absent on complete answers."""
    payload: dict[str, object] = {
        "strategy": fused.strategy,
        "documents": list(fused.documents),
        "weights": {
            name: encode_fraction(weight)
            for name, weight in fused.weights.items()
        },
        "items": [
            {
                "value": item.value,
                "score": encode_fraction(item.score),
                "sources": [
                    [
                        source.document,
                        source.rank,
                        encode_fraction(source.probability),
                    ]
                    for source in item.sources
                ],
            }
            for item in fused.items
        ],
    }
    if fused.rrf_k is not None:
        payload["k"] = encode_fraction(fused.rrf_k)
    if fused.omitted:
        payload["omitted"] = list(fused.omitted)
    return payload


def decode_fused_answer(payload: object) -> FusedAnswer:
    """Inverse of :func:`encode_fused_answer`; strict."""
    if not isinstance(payload, dict):
        raise WireFormatError(
            f"fused answer must be an object, got {type(payload).__name__}"
        )
    try:
        strategy = _require_str(payload["strategy"], "strategy")
        if strategy not in FUSION_STRATEGIES:
            raise WireFormatError(f"unknown fusion strategy {strategy!r}")
        raw_documents = payload["documents"]
        raw_weights = payload["weights"]
        raw_items = payload["items"]
    except KeyError as missing:
        raise WireFormatError(f"fused answer missing field {missing}") from None
    if not isinstance(raw_documents, list):
        raise WireFormatError(f"documents must be a list, got {raw_documents!r}")
    documents = tuple(
        _require_str(name, "document name") for name in raw_documents
    )
    if not isinstance(raw_weights, dict):
        raise WireFormatError(f"weights must be an object, got {raw_weights!r}")
    weights = {
        _require_str(name, "weight name"): decode_fraction(weight)
        for name, weight in raw_weights.items()
    }
    if not isinstance(raw_items, list):
        raise WireFormatError(f"items must be a list, got {raw_items!r}")
    items = []
    for entry in raw_items:
        if not isinstance(entry, dict):
            raise WireFormatError(f"malformed fused item {entry!r}")
        try:
            value = _require_str(entry["value"], "value")
            score = decode_fraction(entry["score"])
            raw_sources = entry["sources"]
        except KeyError as missing:
            raise WireFormatError(
                f"fused item missing field {missing}"
            ) from None
        if not isinstance(raw_sources, list):
            raise WireFormatError(f"sources must be a list, got {raw_sources!r}")
        sources = []
        for triple in raw_sources:
            if not isinstance(triple, list) or len(triple) != 3:
                raise WireFormatError(
                    f"source must be [document, rank, probability],"
                    f" got {triple!r}"
                )
            sources.append(
                DocumentContribution(
                    document=_require_str(triple[0], "source document"),
                    rank=_require_int(triple[1], "source rank"),
                    probability=decode_fraction(triple[2]),
                )
            )
        items.append(FusedItem(value, score, tuple(sources)))
    rrf_k = decode_fraction(payload["k"]) if "k" in payload else None
    omitted: tuple[str, ...] = ()
    if "omitted" in payload:
        raw_omitted = payload["omitted"]
        if not isinstance(raw_omitted, list):
            raise WireFormatError(
                f"omitted must be a list, got {raw_omitted!r}"
            )
        omitted = tuple(
            _require_str(name, "omitted document") for name in raw_omitted
        )
    return FusedAnswer(
        strategy=strategy,
        items=items,
        documents=documents,
        weights=weights,
        rrf_k=rrf_k,
        omitted=omitted,
    )


def encode_distribution(
    distribution: Mapping[int, Fraction],
) -> list[list[object]]:
    """Wire form of an aggregate count distribution
    (:data:`repro.query.aggregates.CountDistribution`): ``[[count,
    "num/den"], ...]`` sorted by count.

    A list of pairs rather than a JSON object — object keys are strings,
    and round-tripping ``{2: p}`` through ``{"2": p}`` is exactly the
    silent type decay this format exists to prevent.  The count subset
    of :func:`encode_aggregate_distribution` (integer values encode
    identically), kept as the typed entry point for count payloads."""
    general: AggregateDistribution = {
        count: probability for count, probability in distribution.items()
    }
    return encode_aggregate_distribution(general)


def decode_distribution(payload: object) -> dict[int, Fraction]:
    """Inverse of :func:`encode_distribution`; strict — the general
    aggregate decode plus an integers-only check (a count distribution
    has no ``None`` outcome and no fractional values)."""
    distribution = decode_aggregate_distribution(payload)
    counts: dict[int, Fraction] = {}
    for count, probability in distribution.items():
        if not isinstance(count, int):
            raise WireFormatError(
                f"distribution count must be an integer, got {count!r}"
            )
        counts[count] = probability
    return counts


_NODE_STATS_FIELDS = (
    "probability_nodes",
    "possibility_nodes",
    "element_nodes",
    "text_nodes",
    "choice_points",
    "max_branching",
    "world_count",
)


def encode_node_stats(stats: NodeStats) -> dict[str, int]:
    """Wire form of a :class:`~repro.pxml.stats.NodeStats` census (all
    counters plus the derived ``total``)."""
    payload: dict[str, int] = {
        field: getattr(stats, field) for field in _NODE_STATS_FIELDS
    }
    payload["total"] = stats.total
    return payload


def decode_node_stats(payload: object) -> NodeStats:
    """Inverse of :func:`encode_node_stats` (``total`` is re-derived)."""
    if not isinstance(payload, dict):
        raise WireFormatError(
            f"node stats must be an object, got {type(payload).__name__}"
        )
    try:
        fields = {
            field: _require_int(payload[field], field)
            for field in _NODE_STATS_FIELDS
        }
    except KeyError as missing:
        raise WireFormatError(f"node stats missing field {missing}") from None
    return NodeStats(**fields)


def encode_feedback_step(step: FeedbackStep) -> dict[str, object]:
    """Wire form of a :class:`~repro.feedback.conditioning.FeedbackStep`
    (the prior stays an exact Fraction)."""
    return {
        "kind": step.kind,
        "expression": step.expression,
        "value": step.value,
        "prior": encode_fraction(step.prior),
        "nodes_before": step.nodes_before,
        "nodes_after": step.nodes_after,
        "worlds_before": step.worlds_before,
        "worlds_after": step.worlds_after,
    }


def decode_feedback_step(payload: object) -> FeedbackStep:
    """Inverse of :func:`encode_feedback_step`; strict."""
    if not isinstance(payload, dict):
        raise WireFormatError(
            f"feedback step must be an object, got {type(payload).__name__}"
        )
    try:
        kind = payload["kind"]
        expression = payload["expression"]
        value = payload["value"]
        if not all(isinstance(text, str) for text in (kind, expression, value)):
            raise WireFormatError(f"malformed feedback step {payload!r}")
        return FeedbackStep(
            kind=kind,
            expression=expression,
            value=value,
            prior=decode_fraction(payload["prior"]),
            nodes_before=_require_int(payload["nodes_before"], "nodes_before"),
            nodes_after=_require_int(payload["nodes_after"], "nodes_after"),
            worlds_before=_require_int(payload["worlds_before"], "worlds_before"),
            worlds_after=_require_int(payload["worlds_after"], "worlds_after"),
        )
    except KeyError as missing:
        raise WireFormatError(f"feedback step missing field {missing}") from None


def encode_report(report: IntegrationReport) -> dict[str, object]:
    """Wire form of an :class:`~repro.core.engine.IntegrationReport`:
    the integer counters, the rule-firing histogram, and the rendered
    summary line (clients that only display the report never need to
    reassemble it)."""
    return {
        "pairs_judged": report.pairs_judged,
        "certain_matches": report.certain_matches,
        "certain_non_matches": report.certain_non_matches,
        "undecided_pairs": report.undecided_pairs,
        "ambiguous_matches": report.ambiguous_matches,
        "components": report.components,
        "choice_points": report.choice_points,
        "largest_choice": report.largest_choice,
        "value_conflicts": report.value_conflicts,
        "attribute_conflicts": report.attribute_conflicts,
        "dtd_fallbacks": report.dtd_fallbacks,
        "rule_firings": dict(report.rule_firings),
        "total_nodes": report.total_nodes,
        "world_count": report.world_count,
        "summary": report.summary(),
    }
