"""The dataspace JSON API: routing HTTP requests into `DataspaceService`.

:class:`ServerApp` is the handler an :class:`~repro.server.http.
HTTPServer` drives.  Endpoints (see ``docs/http_api.md`` for the wire
detail and curl examples):

========  ==========================  =========================================
method    path                        action
========  ==========================  =========================================
GET       ``/healthz``                liveness + document count
GET       ``/stats``                  merged cache counters (one code path
                                      with ``imprecise serve --cache-stats``)
GET       ``/documents``              list stored documents (name, kind)
PUT       ``/documents/{name}``       load an XML (``?kind=pxml``: PXML) body
DELETE    ``/documents/{name}``       delete a document + its cached answers
GET       ``/documents/{name}/stats`` uncertainty census of one document
POST      ``/query``                  ranked probabilistic answer
POST      ``/search``                 dataspace-wide fan-out + rank fusion
POST      ``/aggregate``              exact aggregate distribution
POST      ``/batch``                  one bulk-priced workload
POST      ``/integrate``              integrate two stored sources
POST      ``/feedback``               Bayesian answer feedback
========  ==========================  =========================================

Concurrency discipline — the reason this front scales the way the
ROADMAP wants:

* every service call runs in a **thread-pool executor**, so the event
  loop never blocks on SQLite, tree walks, or Shannon expansions and
  keeps accepting/pipelining requests meanwhile;
* **reads take no app-level lock**: ``/query`` and ``/batch`` go
  straight to the pool, where :class:`~repro.dbms.service.
  DataspaceService` serves persistent cache hits lock-free and
  serializes misses per name itself;
* **writes serialize per name on the event loop** (an
  :class:`asyncio.Lock` per document name): concurrent mutations of one
  document queue as cheap waiters instead of each occupying a pool
  thread just to block on the service's shard lock — the pool stays
  available for cache hits.  Writes to *different* names still run in
  parallel.

Errors come back as structured JSON, ``{"error": {"type", "message"}}``,
with 400 for malformed requests, 404 for missing documents/routes, and
500 for everything unexpected (the HTTP core adds that containment).

Production hygiene (all surfaced under the ``"http"`` key of ``GET
/stats``; see ``docs/http_api.md``):

* **per-endpoint request counters and latency histograms** — fixed
  millisecond buckets, counted on the event loop thread so no locking
  is involved;
* a **slow-query log** — a bounded ring of the most recent requests
  slower than ``slow_ms`` (endpoint, duration, status);
* **backpressure**: with ``max_pending`` set, requests beyond that many
  already in flight are shed immediately with ``503 {"error": {"type":
  "overloaded"}}`` instead of queueing without bound on the executor
  (``GET /healthz`` and ``GET /stats`` are exempt, so probes and
  diagnostics still answer under overload).
"""

from __future__ import annotations

import asyncio
import os
import time
from collections import deque
from concurrent.futures import ThreadPoolExecutor
from contextlib import asynccontextmanager
from functools import partial
from typing import Callable, Optional

from ..dbms.service import DataspaceService
from ..deadline import Deadline
from ..errors import (
    DeadlineExceededError,
    ImpreciseError,
    MissingDocumentError,
    WireFormatError,
)
from ..experiments import standard_rules
from ..pxml.serialize import parse_pxml
from ..query.fusion import DEFAULT_RRF_K
from .http import HTTPRequest, HTTPResponse, json_response
from . import wire

__all__ = ["HTTPMetrics", "LATENCY_BUCKETS_MS", "ServerApp", "route_label"]


def route_label(method: str, path: str) -> str:
    """The metrics label of a request: the route with client-chosen
    document names collapsed to ``{name}`` so cardinality stays bounded
    no matter what names clients invent.  Shared by :class:`ServerApp`
    and the multiproc router (:mod:`repro.server.multiproc`)."""
    path = path.rstrip("/") or "/"
    parts = path.strip("/").split("/")
    if len(parts) == 2 and parts[0] == "documents":
        path = "/documents/{name}"
    elif len(parts) == 3 and parts[0] == "documents" and parts[2] == "stats":
        path = "/documents/{name}/stats"
    return f"{method} {path}"

#: Upper edges (milliseconds) of the latency histogram buckets; the
#: last bucket is unbounded.  Fixed so scrapes from different workers
#: can be summed bucket-by-bucket by the multiproc router.
LATENCY_BUCKETS_MS = (1, 2, 5, 10, 25, 50, 100, 250, 500, 1000, 2500, 5000)

#: How many slow requests the slow-query ring retains.
SLOW_LOG_SIZE = 32


class HTTPMetrics:
    """Per-endpoint request counters, latency histograms, and a
    slow-query ring.

    Only ever touched from the event loop thread (the handler runs
    there), so plain dict/int updates need no locking.  ``snapshot()``
    returns the JSON-ready ``"http"`` section of ``GET /stats``.
    """

    def __init__(self, slow_ms: int = 500):
        if slow_ms < 0:
            raise ValueError(f"slow_ms must be >= 0, got {slow_ms}")
        self.slow_ms = slow_ms
        #: endpoint label -> {"count", "errors", "latency_ms": [bucket counts]}
        self._endpoints: dict = {}
        self._slow: deque = deque(maxlen=SLOW_LOG_SIZE)
        self.shed = 0

    def observe(self, label: str, duration_seconds: float, status: int) -> None:
        entry = self._endpoints.get(label)
        if entry is None:
            entry = self._endpoints[label] = {
                "count": 0,
                "errors": 0,
                "latency_ms": [0] * (len(LATENCY_BUCKETS_MS) + 1),
            }
        entry["count"] += 1
        if status >= 500:
            entry["errors"] += 1
        ms = int(duration_seconds * 1000)
        for index, edge in enumerate(LATENCY_BUCKETS_MS):
            if ms <= edge:
                entry["latency_ms"][index] += 1
                break
        else:
            entry["latency_ms"][-1] += 1
        if self.slow_ms and ms >= self.slow_ms:
            self._slow.append(
                {"endpoint": label, "duration_ms": ms, "status": status}
            )

    def snapshot(self, *, in_flight: int = 0) -> dict:
        return {
            "endpoints": {
                label: {
                    "count": entry["count"],
                    "errors": entry["errors"],
                    "latency_ms": list(entry["latency_ms"]),
                }
                for label, entry in sorted(self._endpoints.items())
            },
            "latency_bucket_edges_ms": list(LATENCY_BUCKETS_MS),
            "in_flight": in_flight,
            "shed": self.shed,
            "slow_ms": self.slow_ms,
            "slow": list(self._slow),
        }


class _HTTPError(Exception):
    """An error with a deliberate HTTP status (app-internal)."""

    def __init__(self, status: int, error_type: str, message: str):
        super().__init__(message)
        self.status = status
        self.error_type = error_type


def _error_response(status: int, error_type: str, message: str) -> HTTPResponse:
    return json_response(
        {"error": {"type": error_type, "message": message}}, status=status
    )


def _field(body: dict, name: str, kind: type = str) -> object:
    """A required, typed field of a JSON request body (400 on absence
    or wrong type)."""
    if not isinstance(body, dict) or name not in body:
        raise _HTTPError(400, "bad_request", f"missing field {name!r}")
    value = body[name]
    if not isinstance(value, kind) or (kind is not bool and isinstance(value, bool)):
        raise _HTTPError(
            400,
            "bad_request",
            f"field {name!r} must be {kind.__name__}, got {type(value).__name__}",
        )
    return value


class ServerApp:
    """The async request handler over one :class:`DataspaceService`.

    ``max_workers`` sizes the executor the service calls run on; the
    default mirrors :class:`concurrent.futures.ThreadPoolExecutor`'s
    I/O-oriented sizing.  :meth:`close` releases the pool (the service
    itself is owned by the caller).
    """

    def __init__(
        self,
        service: DataspaceService,
        *,
        max_workers: Optional[int] = None,
        max_pending: Optional[int] = None,
        slow_ms: int = 500,
    ):
        self.service = service
        if max_pending is not None and max_pending < 1:
            raise ValueError(f"max_pending must be >= 1, got {max_pending}")
        #: backpressure bound: requests beyond this many in flight are
        #: shed with 503 instead of queueing on the executor; ``None``
        #: preserves the unbounded (queue-everything) behavior.
        self.max_pending = max_pending
        self.metrics = HTTPMetrics(slow_ms=slow_ms)
        self._in_flight = 0
        self._pool = ThreadPoolExecutor(
            max_workers=max_workers or min(32, (os.cpu_count() or 1) + 4),
            thread_name_prefix="dataspace-worker",
        )
        #: name -> [asyncio.Lock, holder/waiter count]; only touched from
        #: the event loop thread, so the dict itself needs no locking.
        #: Entries are dropped once uncontended — client-chosen names
        #: must not grow server memory without bound.
        self._write_locks: dict = {}

    # -- plumbing -----------------------------------------------------------

    async def _call(self, fn: Callable, *args, **kwargs):
        """Run one blocking service call on the pool."""
        loop = asyncio.get_running_loop()
        return await loop.run_in_executor(self._pool, partial(fn, *args, **kwargs))

    @asynccontextmanager
    async def _write_lock(self, name: str):
        entry = self._write_locks.get(name)
        if entry is None:
            entry = self._write_locks[name] = [asyncio.Lock(), 0]
        entry[1] += 1
        try:
            async with entry[0]:
                yield
        finally:
            entry[1] -= 1
            if entry[1] == 0 and self._write_locks.get(name) is entry:
                del self._write_locks[name]

    async def __call__(self, request: HTTPRequest) -> HTTPResponse:
        label = route_label(request.method, request.path)
        if (
            self.max_pending is not None
            and self._in_flight >= self.max_pending
            and label not in ("GET /healthz", "GET /stats")
        ):
            # Shed instead of queueing without bound: the caller gets a
            # clean retryable signal while probes and diagnostics
            # (exempt above) keep answering under overload.
            self.metrics.shed += 1
            response = _error_response(
                503,
                "overloaded",
                f"{self._in_flight} requests already in flight"
                f" (max_pending {self.max_pending}); retry later",
            )
            # Overload clears on the scale of in-flight service calls;
            # one second is the honest coarse hint, and it gives
            # Retry-After-honoring clients (DataspaceClient retry_503)
            # a pause bound they can trust.
            response.headers["retry-after"] = "1"
            return response
        self._in_flight += 1
        start = time.monotonic()
        try:
            response = await self._handle(request)
        except Exception:
            # The HTTP core turns this into a contained 500; count it
            # here so "errors" still reflects it.
            self.metrics.observe(label, time.monotonic() - start, 500)
            raise
        finally:
            self._in_flight -= 1
        self.metrics.observe(label, time.monotonic() - start, response.status)
        return response

    async def _handle(self, request: HTTPRequest) -> HTTPResponse:
        try:
            return await self._dispatch(request)
        except _HTTPError as error:
            return _error_response(error.status, error.error_type, str(error))
        except MissingDocumentError as error:
            # The caller named something that is not there: 404.  Every
            # other library error — invalid names, bad XPath/XML, bad
            # wire payloads — is a bad or unservable request: 400.
            return _error_response(404, type(error).__name__, str(error))
        except DeadlineExceededError as error:
            # Before the generic ImpreciseError branch: expiry is a
            # property of the request's budget, not of the request —
            # 504, and retrying with a larger budget is always safe.
            return _error_response(504, "deadline_exceeded", str(error))
        except (WireFormatError, ValueError, ImpreciseError) as error:
            return _error_response(400, type(error).__name__, str(error))

    async def _dispatch(self, request: HTTPRequest) -> HTTPResponse:
        method, path = request.method, request.path.rstrip("/") or "/"
        if path == "/healthz" and method == "GET":
            return await self._healthz()
        if path == "/stats" and method == "GET":
            return await self._stats()
        if path == "/documents" and method == "GET":
            return await self._documents()
        if path == "/query" and method == "POST":
            return await self._query(request)
        if path == "/search" and method == "POST":
            return await self._search(request)
        if path == "/aggregate" and method == "POST":
            return await self._aggregate(request)
        if path == "/batch" and method == "POST":
            return await self._batch(request)
        if path == "/integrate" and method == "POST":
            return await self._integrate(request)
        if path == "/feedback" and method == "POST":
            return await self._feedback(request)
        parts = path.strip("/").split("/")
        if len(parts) == 2 and parts[0] == "documents":
            if method == "PUT":
                return await self._load(request, parts[1])
            if method == "DELETE":
                return await self._delete(parts[1])
            raise _HTTPError(405, "method_not_allowed", f"{method} {path}")
        if len(parts) == 3 and parts[0] == "documents" and parts[2] == "stats":
            if method == "GET":
                return await self._document_stats(parts[1])
            raise _HTTPError(405, "method_not_allowed", f"{method} {path}")
        raise _HTTPError(404, "not_found", f"no route for {method} {path}")

    @staticmethod
    def _deadline_of(body: dict) -> Optional[Deadline]:
        """The request's ``deadline_ms`` budget as a live
        :class:`Deadline` (started *here*, when the handler picks the
        request up), or ``None`` when the caller set no budget."""
        raw = body.get("deadline_ms")
        if raw is None:
            return None
        try:
            return Deadline.from_ms(raw)
        except ValueError as error:
            raise _HTTPError(400, "bad_request", str(error)) from None

    @staticmethod
    def _body(request: HTTPRequest) -> dict:
        try:
            body = request.json()
        except (ValueError, UnicodeDecodeError) as error:
            raise _HTTPError(400, "bad_request", f"invalid JSON body: {error}") from None
        if not isinstance(body, dict):
            raise _HTTPError(400, "bad_request", "request body must be a JSON object")
        return body

    # -- read endpoints -----------------------------------------------------

    async def _healthz(self) -> HTTPResponse:
        count = len(await self._call(self.service.list))
        return json_response({"status": "ok", "documents": count})

    async def _stats(self) -> HTTPResponse:
        stats = dict(await self._call(self.service.cache_stats))
        # The "http" section is assembled on the event loop thread —
        # the only thread that mutates the metrics — so the snapshot
        # is consistent without locks.
        stats["http"] = self.metrics.snapshot(in_flight=self._in_flight)
        return json_response(stats)

    async def _documents(self) -> HTTPResponse:
        return json_response({"documents": await self._call(self.service.documents)})

    async def _document_stats(self, name: str) -> HTTPResponse:
        stats = await self._call(self.service.stats, name)
        return json_response(
            {"document": name, "stats": wire.encode_node_stats(stats)}
        )

    async def _query(self, request: HTTPRequest) -> HTTPResponse:
        body = self._body(request)
        name = _field(body, "document")
        xpath = _field(body, "xpath")
        deadline = self._deadline_of(body)
        answer = await self._call(
            self.service.query, name, xpath, deadline=deadline
        )
        return json_response(
            {
                "document": name,
                "xpath": xpath,
                "answer": {"items": wire.encode_answer(answer)},
            }
        )

    async def _search(self, request: HTTPRequest) -> HTTPResponse:
        """Dataspace-wide fan-out: one query over many documents, fused
        into one ranked result (``query_all``).  Reads take no app-level
        lock — per-document persistent hits deserialize in parallel on
        the service's own fan-out pool."""
        body = self._body(request)
        xpath = _field(body, "xpath")
        documents = body.get("documents")
        if documents is not None:
            if not isinstance(documents, list) or not all(
                isinstance(name, str) for name in documents
            ):
                raise _HTTPError(
                    400, "bad_request", "'documents' must be a list of strings"
                )
        glob = body.get("glob")
        if glob is not None and not isinstance(glob, str):
            raise _HTTPError(400, "bad_request", "'glob' must be a string")
        if documents is not None and glob is not None:
            raise _HTTPError(
                400, "bad_request", "pass either 'documents' or 'glob', not both"
            )
        strategy = body.get("strategy", "prob")
        if not isinstance(strategy, str):
            raise _HTTPError(400, "bad_request", "'strategy' must be a string")
        k = body.get("k", DEFAULT_RRF_K)
        if isinstance(k, bool) or not isinstance(k, (int, str)):
            raise _HTTPError(
                400, "bad_request", "'k' must be an integer or 'num/den' string"
            )
        raw_weights = body.get("weights")
        weights = None
        if raw_weights is not None:
            if not isinstance(raw_weights, dict):
                raise _HTTPError(400, "bad_request", "'weights' must be an object")
            weights = {}
            for name, value in raw_weights.items():
                if not isinstance(name, str):
                    raise _HTTPError(
                        400, "bad_request", "'weights' keys must be strings"
                    )
                if isinstance(value, int) and not isinstance(value, bool):
                    weights[name] = value
                elif isinstance(value, str):
                    weights[name] = wire.decode_fraction(value)
                else:
                    raise _HTTPError(
                        400,
                        "bad_request",
                        "'weights' values must be integers or 'num/den' strings",
                    )
        deadline = self._deadline_of(body)
        allow_partial = body.get("allow_partial", False)
        if not isinstance(allow_partial, bool):
            raise _HTTPError(
                400, "bad_request", "'allow_partial' must be a boolean"
            )
        fused = await self._call(
            self.service.query_all,
            xpath,
            names=documents,
            glob=glob,
            strategy=strategy,
            weights=weights,
            rrf_k=k,
            deadline=deadline,
            allow_partial=allow_partial,
        )
        return json_response(
            {"xpath": xpath, "result": wire.encode_fused_answer(fused)}
        )

    async def _aggregate(self, request: HTTPRequest) -> HTTPResponse:
        body = self._body(request)
        name = _field(body, "document")
        kind = _field(body, "kind")
        target = _field(body, "target")
        text = body.get("text")
        if text is not None and not isinstance(text, str):
            raise _HTTPError(400, "bad_request", "'text' must be a string")
        deadline = self._deadline_of(body)
        distribution = await self._call(
            self.service.aggregate, name, kind, target, text=text,
            deadline=deadline,
        )
        return json_response(
            {
                "document": name,
                "kind": kind,
                "target": target,
                "distribution": wire.encode_aggregate_distribution(distribution),
            }
        )

    async def _batch(self, request: HTTPRequest) -> HTTPResponse:
        body = self._body(request)
        name = _field(body, "document")
        xpaths = _field(body, "xpaths", list)
        if not all(isinstance(xpath, str) for xpath in xpaths):
            raise _HTTPError(400, "bad_request", "'xpaths' must be strings")
        deadline = self._deadline_of(body)
        answers = await self._call(
            self.service.run_batch, name, xpaths, deadline=deadline
        )
        return json_response(
            {
                "document": name,
                "answers": [
                    {"xpath": xpath, "items": wire.encode_answer(answer)}
                    for xpath, answer in zip(xpaths, answers)
                ],
            }
        )

    # -- write endpoints ----------------------------------------------------

    async def _load(self, request: HTTPRequest, name: str) -> HTTPResponse:
        kind = request.query.get("kind", "xml")
        if kind not in ("xml", "pxml"):
            raise _HTTPError(400, "bad_request", f"unknown document kind {kind!r}")
        try:
            text = request.body.decode("utf-8")
        except UnicodeDecodeError as error:
            raise _HTTPError(400, "bad_request", f"body is not UTF-8: {error}") from None
        async with self._write_lock(name):
            if kind == "pxml":
                document = await self._call(parse_pxml, text)
                await self._call(self.service.load_document, name, document)
            else:
                await self._call(self.service.load, name, text)
        return json_response({"stored": name, "kind": kind}, status=201)

    async def _delete(self, name: str) -> HTTPResponse:
        async with self._write_lock(name):
            await self._call(self.service.delete, name)
        return json_response({"deleted": name})

    async def _integrate(self, request: HTTPRequest) -> HTTPResponse:
        body = self._body(request)
        name_a = _field(body, "a")
        name_b = _field(body, "b")
        output = _field(body, "output")
        rule_names = [
            rule for rule in str(body.get("rules", "")).split(",") if rule
        ]
        async with self._write_lock(output):
            report = await self._call(
                self.service.integrate,
                name_a,
                name_b,
                output,
                rules=standard_rules(*rule_names),
            )
        return json_response({"output": output, "report": wire.encode_report(report)})

    async def _feedback(self, request: HTTPRequest) -> HTTPResponse:
        body = self._body(request)
        name = _field(body, "document")
        xpath = _field(body, "xpath")
        value = _field(body, "value")
        correct = body.get("correct", True)
        if not isinstance(correct, bool):
            raise _HTTPError(400, "bad_request", "'correct' must be a boolean")
        async with self._write_lock(name):
            step = await self._call(
                self.service.feedback, name, xpath, value, correct=correct
            )
        return json_response(
            {"document": name, "step": wire.encode_feedback_step(step)}
        )

    # -- lifecycle ----------------------------------------------------------

    def close(self) -> None:
        """Release the worker pool (the service stays with its owner)."""
        self._pool.shutdown(wait=False)
