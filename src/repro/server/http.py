"""Dependency-free asyncio HTTP/1.1 server core.

The network substrate of the dataspace front: a small, correct subset of
HTTP/1.1 built directly on :func:`asyncio.start_server` — no third-party
framework, matching the repository's stdlib-only rule.  The application
layer (:mod:`repro.server.app`) plugs in as a single async handler.

What it implements, deliberately and nothing more:

* request parsing — request line, headers, ``Content-Length`` bodies —
  with hard limits on header and body size (``431``/``413`` + close on
  violation, ``400`` on malformed input);
* **keep-alive and pipelining**: one read→handle→respond loop per
  connection, so back-to-back requests already sitting in the socket
  buffer are answered in order without waiting for new packets (that is
  HTTP/1.1 pipelining; responses are never reordered);
* **graceful shutdown**: :meth:`HTTPServer.shutdown` stops accepting,
  lets in-flight requests finish within a grace period, then cancels
  idle keep-alive readers — no request that reached a handler is
  dropped mid-response;
* ``500`` containment: a handler exception becomes a structured JSON
  error response, never a wedged connection.

Chunked transfer encoding is rejected with ``501`` (the blocking client
in :mod:`repro.server.client` never sends it); TLS, HTTP/2 and
websockets are out of scope — run behind a terminating proxy for those.

:class:`BackgroundServer` runs the same server on a private event loop
in a daemon thread, which is how the tests and benchmarks host a live
server inside one process.
"""

from __future__ import annotations

import asyncio
import json
import threading
from dataclasses import dataclass, field
from typing import Awaitable, Callable, Optional
from urllib.parse import parse_qsl, unquote, urlsplit

__all__ = [
    "HTTPRequest",
    "HTTPResponse",
    "HTTPServer",
    "BackgroundServer",
    "json_response",
]

#: Reason phrases for the statuses this stack emits.
REASONS = {
    200: "OK",
    201: "Created",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    408: "Request Timeout",
    413: "Payload Too Large",
    431: "Request Header Fields Too Large",
    500: "Internal Server Error",
    501: "Not Implemented",
    502: "Bad Gateway",
    503: "Service Unavailable",
    504: "Gateway Timeout",
}

MAX_HEADER_BYTES = 64 * 1024
MAX_BODY_BYTES = 16 * 1024 * 1024

#: Seconds a connection may sit without completing a request head/body
#: before the server closes it — bounds how long silent or slow-dripping
#: clients can hold a task and its buffers.
IDLE_TIMEOUT = 300.0

_SERVER_NAME = "imprecise-dataspace"


@dataclass
class HTTPRequest:
    """One parsed request: method, split target, lowercased headers,
    raw body bytes."""

    method: str
    target: str                      # the raw request target, e.g. /a?b=c
    path: str                        # decoded path component
    query: dict                      # first-wins decoded query parameters
    headers: dict                    # lowercased header name -> value
    body: bytes = b""

    def json(self) -> object:
        """The body parsed as JSON (raises ``ValueError`` on garbage —
        the app layer maps that to a 400)."""
        return json.loads(self.body.decode("utf-8"))


@dataclass
class HTTPResponse:
    """One response: status, body bytes, extra headers."""

    status: int = 200
    body: bytes = b""
    headers: dict = field(default_factory=dict)
    content_type: str = "application/json; charset=utf-8"


def json_response(payload: object, status: int = 200) -> HTTPResponse:
    """An :class:`HTTPResponse` carrying a JSON document."""
    return HTTPResponse(
        status=status,
        body=(json.dumps(payload, ensure_ascii=False) + "\n").encode("utf-8"),
    )


class _ProtocolError(Exception):
    """Unparseable or over-limit request; carries the response status.
    The connection closes after the error response (request framing can
    no longer be trusted)."""

    def __init__(self, status: int, message: str):
        super().__init__(message)
        self.status = status


Handler = Callable[[HTTPRequest], Awaitable[HTTPResponse]]


class HTTPServer:
    """Asyncio HTTP/1.1 server around a single async ``handler``.

    >>> async def handler(request):
    ...     return json_response({"path": request.path})
    >>> server = HTTPServer(handler)        # doctest: +SKIP
    >>> host, port = await server.start()   # doctest: +SKIP

    ``port=0`` binds an ephemeral port; :meth:`start` returns the actual
    address.  Call :meth:`shutdown` (same loop) to stop.
    """

    def __init__(
        self,
        handler: Handler,
        host: str = "127.0.0.1",
        port: int = 0,
        *,
        max_header_bytes: int = MAX_HEADER_BYTES,
        max_body_bytes: int = MAX_BODY_BYTES,
        idle_timeout: float = IDLE_TIMEOUT,
    ):
        self.handler = handler
        self.host = host
        self.port = port
        self.max_header_bytes = max_header_bytes
        self.max_body_bytes = max_body_bytes
        self.idle_timeout = idle_timeout
        self._server: Optional[asyncio.AbstractServer] = None
        self._connections: set = set()
        self._idle: set = set()     # connections parked between requests
        self._closing = False
        #: Requests fully served (diagnostics; read from the loop thread).
        self.requests_served = 0

    # -- lifecycle ----------------------------------------------------------

    async def start(self) -> tuple:
        """Bind and start accepting; returns ``(host, port)`` actually
        bound (meaningful with ``port=0``)."""
        self._server = await asyncio.start_server(
            self._serve_connection,
            self.host,
            self.port,
            limit=self.max_header_bytes,
        )
        sockname = self._server.sockets[0].getsockname()
        self.host, self.port = sockname[0], sockname[1]
        return self.host, self.port

    async def shutdown(self, grace: float = 5.0) -> None:
        """Stop accepting; close idle keep-alive connections at once;
        drain in-flight requests for ``grace`` seconds, then cancel
        whatever is left.  Idempotent."""
        self._closing = True
        if self._server is not None:
            self._server.close()
            self._server = None
        # A connection waiting for its *next* request head carries no
        # work — cancel immediately; only in-flight requests get grace.
        for task in list(self._idle):
            task.cancel()
        tasks = [task for task in self._connections if not task.done()]
        if tasks:
            done, pending = await asyncio.wait(tasks, timeout=grace)
            for task in pending:
                task.cancel()
            if pending:
                await asyncio.wait(pending, timeout=1.0)

    # -- connection handling ------------------------------------------------

    async def _serve_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        task = asyncio.current_task()
        self._connections.add(task)
        try:
            while not self._closing:
                try:
                    request = await self._read_request(reader)
                except _ProtocolError as error:
                    await self._write_response(
                        writer,
                        json_response(
                            {"error": {"type": "protocol", "message": str(error)}},
                            status=error.status,
                        ),
                        keep_alive=False,
                    )
                    break
                if request is None:
                    break  # clean EOF between requests
                try:
                    response = await self.handler(request)
                except asyncio.CancelledError:
                    raise
                except Exception as error:  # noqa: BLE001 — contain, report, survive
                    response = json_response(
                        {
                            "error": {
                                "type": type(error).__name__,
                                "message": str(error),
                            }
                        },
                        status=500,
                    )
                keep_alive = self._keep_alive(request) and not self._closing
                await self._write_response(writer, response, keep_alive=keep_alive)
                self.requests_served += 1
                if not keep_alive:
                    break
        except (ConnectionError, TimeoutError):
            pass  # peer went away; nothing to salvage
        except asyncio.CancelledError:
            pass  # shutdown cancelled an idle reader
        finally:
            self._connections.discard(task)
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, asyncio.CancelledError):
                pass

    @staticmethod
    def _keep_alive(request: HTTPRequest) -> bool:
        connection = request.headers.get("connection", "").lower()
        if "close" in connection:
            return False
        return True  # HTTP/1.1 default (1.0 clients must ask, and ours don't)

    async def _read_request(self, reader: asyncio.StreamReader) -> Optional[HTTPRequest]:
        """Parse one request off the stream; ``None`` on clean EOF."""
        task = asyncio.current_task()
        self._idle.add(task)
        try:
            blob = await asyncio.wait_for(
                reader.readuntil(b"\r\n\r\n"), self.idle_timeout
            )
        except asyncio.TimeoutError:
            # A connection idle *between* requests closes silently — a
            # keep-alive client would misread a 408 here as the response
            # to its next request.  Only a partially received head (bytes
            # already buffered) earns the best-effort 408.
            if getattr(reader, "_buffer", b""):
                raise _ProtocolError(408, "idle timeout mid-request") from None
            return None
        except asyncio.IncompleteReadError as error:
            if not error.partial:
                return None
            raise _ProtocolError(400, "truncated request head") from None
        except asyncio.LimitOverrunError:
            raise _ProtocolError(
                431, f"request head exceeds {self.max_header_bytes} bytes"
            ) from None
        finally:
            self._idle.discard(task)
        try:
            head = blob[:-4].decode("latin-1")
            request_line, *header_lines = head.split("\r\n")
            method, target, version = request_line.split(" ")
        except ValueError:
            raise _ProtocolError(400, "malformed request line") from None
        if not version.startswith("HTTP/1."):
            raise _ProtocolError(400, f"unsupported protocol {version!r}")
        headers: dict = {}
        for line in header_lines:
            name, colon, value = line.partition(":")
            if not colon or not name or name != name.strip():
                raise _ProtocolError(400, f"malformed header line {line!r}")
            name = name.lower()
            if name in ("content-length", "transfer-encoding") and name in headers:
                # RFC 7230 §3.3.2/§3.3.3: conflicting framing headers
                # must be rejected — collapsing silently enables request
                # smuggling through a front proxy honoring the other one.
                raise _ProtocolError(400, f"duplicate {name} header")
            headers[name] = value.strip()
        if "transfer-encoding" in headers:
            # No TE of any kind: an unread encoded body would desync the
            # connection (its bytes become the "next" pipelined request).
            raise _ProtocolError(501, "transfer encodings not supported")
        body = b""
        if "content-length" in headers:
            try:
                length = int(headers["content-length"])
                if length < 0:
                    raise ValueError
            except ValueError:
                raise _ProtocolError(400, "malformed Content-Length") from None
            if length > self.max_body_bytes:
                raise _ProtocolError(
                    413, f"body exceeds {self.max_body_bytes} bytes"
                )
            try:
                body = await asyncio.wait_for(
                    reader.readexactly(length), self.idle_timeout
                )
            except asyncio.TimeoutError:
                raise _ProtocolError(408, "body read timeout") from None
            except asyncio.IncompleteReadError:
                raise _ProtocolError(400, "truncated request body") from None
        split = urlsplit(target)
        query: dict = {}
        for key, value in parse_qsl(split.query):
            query.setdefault(key, value)  # first wins, as documented
        return HTTPRequest(
            method=method.upper(),
            target=target,
            path=unquote(split.path),
            query=query,
            headers=headers,
            body=body,
        )

    @staticmethod
    async def _write_response(
        writer: asyncio.StreamWriter,
        response: HTTPResponse,
        *,
        keep_alive: bool,
    ) -> None:
        reason = REASONS.get(response.status, "Unknown")
        headers = {
            "content-type": response.content_type,
            "content-length": str(len(response.body)),
            "connection": "keep-alive" if keep_alive else "close",
            "server": _SERVER_NAME,
        }
        headers.update({k.lower(): v for k, v in response.headers.items()})
        head = f"HTTP/1.1 {response.status} {reason}\r\n" + "".join(
            f"{name}: {value}\r\n" for name, value in headers.items()
        )
        writer.write(head.encode("latin-1") + b"\r\n" + response.body)
        await writer.drain()


class BackgroundServer:
    """An :class:`HTTPServer` on a private event loop in a daemon thread.

    The embedding shape used by tests and benchmarks::

        background = BackgroundServer(app)
        host, port = background.start()
        ...                         # drive it with the blocking client
        background.stop()

    ``start`` blocks until the port is bound; ``stop`` runs the graceful
    shutdown on the loop and joins the thread.  Context-manager friendly.
    """

    def __init__(self, handler: Handler, host: str = "127.0.0.1", port: int = 0):
        self.server = HTTPServer(handler, host, port)
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._thread: Optional[threading.Thread] = None
        self._started = threading.Event()
        self._startup_error: Optional[BaseException] = None

    def start(self, timeout: float = 10.0) -> tuple:
        self._thread = threading.Thread(
            target=self._run, name="dataspace-http", daemon=True
        )
        self._thread.start()
        if not self._started.wait(timeout):
            raise RuntimeError("HTTP server failed to start within timeout")
        if self._startup_error is not None:
            raise RuntimeError("HTTP server failed to start") from self._startup_error
        return self.server.host, self.server.port

    def _run(self) -> None:
        self._loop = asyncio.new_event_loop()
        asyncio.set_event_loop(self._loop)
        try:
            try:
                # start_server() begins accepting as soon as it binds;
                # run_forever() then drives the accepted connections.
                self._loop.run_until_complete(self.server.start())
            except BaseException as error:  # bind failure lands in start()
                self._startup_error = error
                return
            finally:
                self._started.set()
            self._loop.run_forever()
        finally:
            self._loop.close()

    def call_soon(self, callback: Callable[[], None]) -> bool:
        """Schedule ``callback()`` on the server's event loop from any
        thread; returns ``False`` when the loop is not running (during
        startup/shutdown races) instead of raising."""
        loop = self._loop
        if loop is None or not loop.is_running():
            return False
        try:
            loop.call_soon_threadsafe(callback)
        except RuntimeError:
            return False  # loop closed between the check and the call
        return True

    def stop(self, grace: float = 5.0, timeout: float = 10.0) -> None:
        if self._loop is None or self._thread is None:
            return
        if self._thread.is_alive():
            future = asyncio.run_coroutine_threadsafe(
                self.server.shutdown(grace), self._loop
            )
            try:
                # Wait for the graceful drain *before* stopping the loop:
                # loop.stop() from inside the coroutine would halt the
                # loop before the result ever propagated back here.
                future.result(timeout)
            except Exception:
                future.cancel()
            self._loop.call_soon_threadsafe(self._loop.stop)
        self._thread.join(timeout)
        self._thread = None

    def __enter__(self) -> "BackgroundServer":
        self.start()
        return self

    def __exit__(self, *exc_info) -> None:
        self.stop()
