"""Bayesian conditioning of probabilistic documents on answer feedback.

A user statement "this answer is correct" (or wrong) is an observation of
the answer's *event* — a boolean formula over choice variables produced by
the query engine.  Conditioning is exact:

1. Shannon-expand the event over the variables it mentions; every
   satisfying branch is a partial assignment with weight Π p(choice);
2. for each branch, rebuild the document with the assigned choices forced
   (probability 1, siblings dropped) — exact tree surgery, because the
   remaining choices are independent of the observed ones;
3. mix the branch documents with their posterior weights (and let
   :func:`repro.pxml.simplify.simplify_fixpoint` re-compact the result).

The cost is exponential only in the number of *variables the event
mentions* (one answer's provenance), never in the document size.  The test
suite verifies the result equals Bayes over enumerated worlds.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from fractions import Fraction
from typing import Optional, Union

from ..errors import FeedbackError
from ..probability import ONE, ZERO
from ..pxml.events import Event, FALSE_EVENT, TRUE_EVENT, negate, pivot_variable
from ..pxml.events_cache import cache_for
from ..pxml.model import (
    PXDocument,
    PXElement,
    PXText,
    Possibility,
    ProbNode,
)
from ..pxml.simplify import simplify_fixpoint
from ..pxml.stats import tree_stats
from ..query.engine import ProbQueryEngine
from ..query.ranking import RankedAnswer

#: Refuse Shannon expansions beyond this many satisfying branches.
DEFAULT_BRANCH_LIMIT = 4096


def _rebuild_prob(node: ProbNode, assignment: dict[int, int]) -> ProbNode:
    """Copy of the subtree with assigned choices forced to probability 1."""
    forced = assignment.get(node.uid)
    rebuilt = ProbNode()
    for index, possibility in enumerate(node.possibilities):
        if forced is not None and index != forced:
            continue
        prob = ONE if forced is not None else possibility.prob
        children = []
        for child in possibility.children:
            if isinstance(child, PXText):
                children.append(PXText(child.value))
            else:
                children.append(_rebuild_element(child, assignment))
        rebuilt.append(Possibility(prob, children))
    if not rebuilt.possibilities:
        raise FeedbackError(
            f"assignment removed every possibility of ▽{node.uid}"
        )
    return rebuilt


def _rebuild_element(element: PXElement, assignment: dict[int, int]) -> PXElement:
    return PXElement(
        element.tag,
        dict(element.attributes),
        [_rebuild_prob(child, assignment) for child in element.children],
    )


def condition_on_assignment(
    document: PXDocument, assignment: dict[int, int]
) -> PXDocument:
    """Condition on a conjunction of choices (uid → possibility index).

    Exact tree surgery: observed nodes keep only the observed possibility
    (probability 1); everything else is untouched — valid because choices
    at different probability nodes are independent.
    """
    return PXDocument(_rebuild_prob(document.root, assignment))


def _satisfying_branches(
    event: Event, *, limit: int
) -> list[tuple[dict[int, int], Fraction]]:
    """Disjoint partial assignments over the event's variables that make it
    true, each with weight Π p(assigned choice).  Weights sum to P(event)."""
    branches: list[tuple[dict[int, int], Fraction]] = []

    def expand(current: Event, assignment: dict[int, int], weight: Fraction) -> None:
        if current is TRUE_EVENT:
            branches.append((dict(assignment), weight))
            if len(branches) > limit:
                raise FeedbackError(
                    f"conditioning needs more than {limit} branches;"
                    " raise the limit or simplify the observation"
                )
            return
        if current is FALSE_EVENT:
            return
        # Most-mentioned variable first (same rationale as the kernel's
        # Shannon pivot): shared top-level choices collapse branches.
        # The pivot reads the counts cached on the interned event — no
        # per-step tree rescans.
        uid, node = pivot_variable(current)
        for index, possibility in enumerate(node.possibilities):
            if possibility.prob == 0:
                continue
            assignment[uid] = index
            expand(current.assign(uid, index), assignment, weight * possibility.prob)
            del assignment[uid]

    expand(event, {}, ONE)
    return branches


def _uids_under(node: ProbNode) -> set[int]:
    return {prob.uid for prob in node.iter_prob_nodes()}


def _immediate_child_probs(node: ProbNode) -> list[ProbNode]:
    children: list[ProbNode] = []
    for possibility in node.possibilities:
        for child in possibility.children:
            if isinstance(child, PXElement):
                children.extend(child.children)
    return children


def _mixture_at(
    node: ProbNode,
    branches: list[tuple[dict[int, int], Fraction]],
    total: Fraction,
) -> ProbNode:
    """Replace ``node`` by the posterior mixture over satisfying branches
    (every event variable lives in this subtree, so the rest of the
    document keeps its prior — choices are independent)."""
    mixture = ProbNode()
    for assignment, weight in branches:
        forced = _rebuild_prob(node, assignment)
        # impreciselint: disable=float-taint -- exact Fraction/Fraction division
        posterior = weight / total
        for possibility in forced.possibilities:
            mixture.append(
                Possibility(posterior * possibility.prob, possibility.children)
            )
    return mixture


def _rebuild_conditioned(
    node: ProbNode,
    var_uids: set[int],
    branches: list[tuple[dict[int, int], Fraction]],
    total: Fraction,
) -> ProbNode:
    """Copy the tree, descending towards the minimal probability node that
    contains every event variable, and splice the mixture there.

    Descending past an unrelated choice point is sound because guarded
    events mention the choices that make their variables reachable: if
    this node's uid is not in the event, the event is independent of it.
    """
    present = _uids_under(node) & var_uids
    if not present:
        return node.copy()
    if node.uid not in var_uids:
        carriers = [
            child
            for child in _immediate_child_probs(node)
            if _uids_under(child) & var_uids
        ]
        if len(carriers) == 1 and (_uids_under(carriers[0]) & var_uids) == present:
            target = carriers[0]
            rebuilt = ProbNode()
            for possibility in node.possibilities:
                children = []
                for child in possibility.children:
                    if isinstance(child, PXText):
                        children.append(PXText(child.value))
                    else:
                        children.append(
                            _rebuild_element_conditioned(
                                child, target, var_uids, branches, total
                            )
                        )
                rebuilt.append(Possibility(possibility.prob, children))
            return rebuilt
    return _mixture_at(node, branches, total)


def _rebuild_element_conditioned(
    element: PXElement,
    target: ProbNode,
    var_uids: set[int],
    branches: list[tuple[dict[int, int], Fraction]],
    total: Fraction,
) -> PXElement:
    children = []
    for child in element.children:
        if child is target:
            children.append(
                _rebuild_conditioned(child, var_uids, branches, total)
            )
        elif _uids_under(child) & var_uids:
            children.append(_rebuild_conditioned(child, var_uids, branches, total))
        else:
            children.append(child.copy())
    return PXElement(element.tag, dict(element.attributes), children)


def condition_on_event(
    document: PXDocument,
    event: Event,
    *,
    observed: bool = True,
    compact: bool = True,
    branch_limit: int = DEFAULT_BRANCH_LIMIT,
) -> PXDocument:
    """The document's posterior given that ``event`` was observed true
    (or false, with ``observed=False``).

    The posterior mixture is spliced in at the *minimal* probability node
    whose subtree holds all of the event's variables, so conditioning
    leaves unrelated parts of the document untouched (and compact).
    Raises :class:`FeedbackError` when the observation has probability
    zero — there is no posterior to form.
    """
    target = event if observed else negate(event)
    if target is FALSE_EVENT:
        raise FeedbackError("cannot condition on an impossible observation")
    if target is TRUE_EVENT:
        return document.copy()

    branches = _satisfying_branches(target, limit=branch_limit)
    total = sum((weight for _, weight in branches), ZERO)
    if total == 0:
        raise FeedbackError("observation has probability zero")

    if len(branches) == 1:
        assignment, _ = branches[0]
        conditioned = condition_on_assignment(document, assignment)
    else:
        var_uids = set(target.variables())
        conditioned = PXDocument(
            _rebuild_conditioned(document.root, var_uids, branches, total)
        )
    # Conditioning is functional: the posterior is built from copies with
    # fresh uids, so the input document's cache stays valid — no
    # invalidation needed (see repro.pxml.events_cache).
    if compact:
        conditioned, _ = simplify_fixpoint(conditioned)
    return conditioned


@dataclass(frozen=True)
class FeedbackStep:
    """A record of one feedback interaction."""

    kind: str           # 'confirm' | 'reject'
    expression: str
    value: str
    prior: Fraction     # probability of the answer before feedback
    nodes_before: int
    nodes_after: int
    worlds_before: int
    worlds_after: int


class FeedbackSession:
    """Incremental integration improvement through answer feedback.

    >>> # (see examples/feedback_loop.py for an end-to-end walkthrough)

    Each :meth:`confirm`/:meth:`reject` replaces the session's document
    with its exact posterior; the history records how much uncertainty
    each interaction removed — the paper's "incrementally improving the
    integration result" loop (§I).
    """

    def __init__(self, document: PXDocument, *, compact: bool = True):
        self.document = document
        self.compact = compact
        self.history: list[FeedbackStep] = []

    def ranked(self, expression: str) -> RankedAnswer:
        """Query the current document."""
        return ProbQueryEngine(self.document).query(expression)

    def confirm(self, expression: str, value: str) -> FeedbackStep:
        """Assert that ``value`` belongs to the answer of ``expression``."""
        return self._apply(expression, value, observed=True)

    def reject(self, expression: str, value: str) -> FeedbackStep:
        """Assert that ``value`` does *not* belong to the answer."""
        return self._apply(expression, value, observed=False)

    def _apply(self, expression: str, value: str, *, observed: bool) -> FeedbackStep:
        engine = ProbQueryEngine(self.document)
        events = engine.answer_events(expression)
        if value not in events:
            if observed:
                raise FeedbackError(
                    f"{value!r} is not a possible answer of {expression!r};"
                    " confirming it would condition on probability zero"
                )
            # Rejecting something impossible is a no-op.
            stats = tree_stats(self.document)
            step = FeedbackStep(
                "reject", expression, value, ZERO,
                stats.total, stats.total, stats.world_count, stats.world_count,
            )
            self.history.append(step)
            return step
        event, _ = events[value]
        before = tree_stats(self.document)
        # Price the prior through the document's shared cache: the answer
        # event was just expanded by answer_events' consumers (or will be
        # needed again by the next ranked() call), so feedback rides the
        # same memo as querying.
        prior = cache_for(self.document).probability(event)
        self.document = condition_on_event(
            self.document, event, observed=observed, compact=self.compact
        )
        after = tree_stats(self.document)
        step = FeedbackStep(
            "confirm" if observed else "reject",
            expression,
            value,
            prior,
            before.total,
            after.total,
            before.world_count,
            after.world_count,
        )
        self.history.append(step)
        return step
