"""User feedback on query answers (§I, §VII and the paper's ref [4]).

"Feedback on query answers can be traced back to possible worlds and be
used to remove data related to impossible worlds from the database, hence
incrementally improving the integration result."  The demo paper states
the mechanism "has not been implemented" — this package implements it, as
the reproduction's extension deliverable.
"""

from .conditioning import (
    FeedbackSession,
    FeedbackStep,
    condition_on_assignment,
    condition_on_event,
)

__all__ = [
    "FeedbackSession",
    "FeedbackStep",
    "condition_on_event",
    "condition_on_assignment",
]
