"""Exception hierarchy for the IMPrECISE reproduction.

Every error raised by this library derives from :class:`ImpreciseError`, so
callers can catch library failures with a single ``except`` clause while the
subclasses keep failure modes distinguishable (parse errors vs. semantic
model violations vs. combinatorial explosion guards).
"""

from __future__ import annotations


class ImpreciseError(Exception):
    """Base class for all errors raised by the ``repro`` library."""


class XMLParseError(ImpreciseError):
    """Raised when XML text cannot be parsed.

    Carries the 1-based ``line`` and ``column`` of the offending input
    position so callers can point users at the problem.
    """

    def __init__(self, message: str, line: int = 0, column: int = 0):
        location = f" (line {line}, column {column})" if line else ""
        super().__init__(f"{message}{location}")
        self.line = line
        self.column = column


class DTDError(ImpreciseError):
    """Raised for malformed DTD declarations."""


class DTDViolation(ImpreciseError):
    """Raised (in strict mode) when a document violates its DTD."""


class XPathSyntaxError(ImpreciseError):
    """Raised when an XPath expression cannot be parsed."""

    def __init__(self, message: str, position: int = -1, text: str = ""):
        pointer = ""
        if position >= 0 and text:
            pointer = f" at offset {position} in {text!r}"
        super().__init__(f"{message}{pointer}")
        self.position = position


class XPathEvaluationError(ImpreciseError):
    """Raised when a syntactically valid XPath cannot be evaluated
    (unknown function, wrong argument types, unsupported feature)."""


class ModelError(ImpreciseError):
    """Raised when a probabilistic XML tree violates the layered model
    invariants (wrong node layering, probabilities outside [0, 1],
    sibling possibilities not summing to 1)."""


class ProbabilityError(ImpreciseError):
    """Raised for invalid probability values or distributions."""


class IntegrationError(ImpreciseError):
    """Base class for integration failures."""


class IntegrationConflict(IntegrationError):
    """Raised when knowledge rules force contradictory decisions, e.g. two
    certain matches that would pair one element with two partners."""


class ExplosionError(IntegrationError):
    """Raised when integration would enumerate more possibilities than the
    configured budget allows.

    The paper's whole point is that unchecked integration explodes
    (Figure 5); this guard turns the explosion into a diagnosable error
    that names the offending element and the possibility count, instead of
    an out-of-memory crash.
    """

    def __init__(self, message: str, estimated: int | None = None):
        super().__init__(message)
        self.estimated = estimated


class QueryError(ImpreciseError):
    """Raised when a query cannot be answered over a probabilistic tree
    (e.g. a feature with no possible-worlds compilation)."""


class FeedbackError(ImpreciseError):
    """Raised when user feedback cannot be applied, e.g. conditioning on an
    impossible (probability zero) event."""


class StoreError(ImpreciseError):
    """Raised by the document store for invalid names or I/O issues."""


class MissingDocumentError(StoreError):
    """Raised when a named document does not exist in the store.

    A distinct type (not a message) so callers — the HTTP front maps it
    to 404 where other store errors are 400 — can classify without
    string matching."""


class CacheBusyError(StoreError):
    """Raised when the persistent answer cache cannot acquire its SQLite
    write lock within the configured budget (``busy_timeout`` plus the
    bounded in-library retries).

    This is the *typed* surface of ``sqlite3.OperationalError: database
    is locked`` for multi-process deployments sharing one ``--cache-dir``
    — callers never see the raw driver exception, and the HTTP front can
    map sustained contention to a retryable condition instead of a 500.
    Retrying later is always safe: the cache is a cache, and the write
    that lost the race will simply be recomputed or re-stored."""


class DeadlineExceededError(ImpreciseError):
    """Raised when a request's end-to-end ``deadline_ms`` budget expires
    before evaluation finishes.

    A distinct type so every layer can classify without string matching:
    the engine raises it from its evaluation checkpoints, the service
    fan-out raises it when stragglers outlive the budget (unless the
    caller opted into a partial fused answer), the HTTP front maps it to
    504 Gateway Timeout, and :class:`~repro.server.client.DataspaceClient`
    re-raises the 504 as this same type.  Deadline expiry is a property
    of the *request*, never of the data — retrying with a larger budget
    is always safe and always exact."""


class WireFormatError(ImpreciseError):
    """Raised when a serialized payload (persistent-cache row, HTTP
    request/response body) does not decode to the exact-Fraction wire
    format — malformed fraction strings, wrong shapes, wrong types."""
