"""Deterministic noise injection.

Experiments that probe rule robustness ("no typos occur in genres"
presumes typos occur elsewhere) need reproducible imperfections; all
perturbations here are pure functions of (text, seed).
"""

from __future__ import annotations

import random


def typo(text: str, *, seed: int = 0) -> str:
    """Introduce one deterministic typo: swap two adjacent alphabetic
    characters (strings shorter than 4 letters get a dropped character
    instead; strings shorter than 2 are returned unchanged).

    >>> typo("Mission", seed=1) != "Mission"
    True
    >>> typo("a")
    'a'
    """
    if len(text) < 2:
        return text
    rng = random.Random(seed)
    positions = [
        index
        for index in range(len(text) - 1)
        if text[index].isalpha() and text[index + 1].isalpha()
    ]
    if not positions:
        return text
    if len(text) < 4:
        drop = rng.choice(range(len(text)))
        return text[:drop] + text[drop + 1:]
    index = rng.choice(positions)
    swapped = text[index + 1] + text[index]
    return text[:index] + swapped + text[index + 2:]


def drop_field_marker(value: str) -> str:
    """Strip punctuation — simulates sources that normalise titles
    differently ('Mission: Impossible' vs 'Mission Impossible')."""
    return " ".join("".join(c for c in value if c.isalnum() or c.isspace()).split())
