"""MPEG-7-style rendering of movie records.

Conventions of this source:

* director and cast names in natural ``"Given Family"`` order (the
  disagreement with IMDB's ``"Family, Given"`` that makes records never
  deep-equal, §V);
* no ``runtime``/``kind`` fields (thinner records, like a real MPEG-7
  description scheme extract would carry different descriptors).

Element names for shared fields are identical to the IMDB rendering —
schema alignment is assumed by the paper (§III).
"""

from __future__ import annotations

from typing import Iterable, Sequence

from ..xmlkit.nodes import XDocument, XElement
from .movies import MovieRecord
from .perturb import typo


def _movie_element(
    record: MovieRecord, *, typo_titles: frozenset[str], seed: int
) -> XElement:
    movie = XElement("movie")
    title = record.title
    if record.title in typo_titles:
        title = typo(title, seed=seed)
    movie.append(XElement("title", children=[title]))
    movie.append(XElement("year", children=[str(record.year)]))
    for genre in record.genres:
        movie.append(XElement("genre", children=[genre]))
    for director in record.directors:
        movie.append(XElement("director", children=[director]))
    for actor in record.cast[:1]:
        # The MPEG-7 extract lists at most the lead actor.
        movie.append(XElement("actor", children=[actor]))
    return movie


def mpeg7_document(
    records: Sequence[MovieRecord],
    *,
    typo_titles: Iterable[str] = (),
    seed: int = 7,
) -> XDocument:
    """Render records as the MPEG-7 source document.

    >>> from repro.data.movies import confusing_mpeg7_six
    >>> doc = mpeg7_document(confusing_mpeg7_six())
    >>> len(doc.root.child_elements("movie"))
    6
    """
    titles = frozenset(typo_titles)
    root = XElement("movies")
    for index, record in enumerate(records):
        root.append(_movie_element(record, typo_titles=titles, seed=seed + index))
    return XDocument(root)
