"""The movie catalog behind all §V/§VI experiments.

One neutral :class:`MovieRecord` representation; the :mod:`repro.data.imdb`
and :mod:`repro.data.mpeg7` renderers turn records into the two sources'
XML with their respective conventions.  Records carry an ``rwo`` id — the
ground-truth real-world-object identity used by answer-quality measures
and by tests that check which pairs *should* match.

Selections:

* :func:`confusing_mpeg7_six` / :func:`sequels_six_imdb` — the Table I
  workload: two movies per franchise in each source, exactly one shared
  rwo per franchise.
* :func:`confusing_imdb_records` — the Figure 5 x-axis: up to 60
  franchise-related entries (films, sequels, TV shows, synthesized
  variants whose titles extend the franchise tokens).
* :func:`typical_mpeg7_six` / :func:`typical_imdb_records` — the typical-
  conditions workload: distinct 1995 movies, two shared rwos.

Genre assignments are calibrated so the paper's rule-effectiveness
ordering emerges (see DESIGN.md): genres overlap across the action
franchises (genre rule alone keeps them confusable) but separate Jaws
(Horror) and the 1966 TV series (Crime) from the rest.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Optional, Sequence


@dataclass(frozen=True)
class MovieRecord:
    """Source-neutral movie metadata."""

    title: str
    year: int
    genres: tuple[str, ...]
    directors: tuple[str, ...]
    cast: tuple[str, ...] = ()
    runtime: Optional[int] = None
    kind: str = "film"
    rwo: str = ""  # ground-truth identity; same rwo ⇔ same real movie

    def with_title(self, title: str) -> "MovieRecord":
        return MovieRecord(
            title, self.year, self.genres, self.directors,
            self.cast, self.runtime, self.kind, self.rwo,
        )


# -- the franchises the paper names (§V) ------------------------------------

JAWS_FILMS = (
    MovieRecord("Jaws", 1975, ("Horror", "Thriller"),
                ("Steven Spielberg",), ("Roy Scheider", "Richard Dreyfuss"),
                124, "film", "jaws-1975"),
    MovieRecord("Jaws 2", 1978, ("Horror", "Thriller"),
                ("Jeannot Szwarc",), ("Roy Scheider", "Lorraine Gary"),
                116, "film", "jaws-2-1978"),
    MovieRecord("Jaws 3-D", 1983, ("Thriller",),
                ("Joe Alves",), ("Dennis Quaid", "Bess Armstrong"),
                99, "film", "jaws-3d-1983"),
    MovieRecord("Jaws: The Revenge", 1987, ("Thriller",),
                ("Joseph Sargent",), ("Lorraine Gary", "Lance Guest"),
                89, "film", "jaws-revenge-1987"),
)

DIE_HARD_FILMS = (
    MovieRecord("Die Hard", 1988, ("Action", "Thriller"),
                ("John McTiernan",), ("Bruce Willis", "Alan Rickman"),
                132, "film", "die-hard-1988"),
    MovieRecord("Die Hard 2", 1990, ("Action", "Thriller"),
                ("Renny Harlin",), ("Bruce Willis", "Bonnie Bedelia"),
                124, "film", "die-hard-2-1990"),
    MovieRecord("Die Hard: With a Vengeance", 1995, ("Action", "Thriller"),
                ("John McTiernan",), ("Bruce Willis", "Samuel L. Jackson"),
                128, "film", "die-hard-3-1995"),
)

MISSION_IMPOSSIBLE_ENTRIES = (
    MovieRecord("Mission: Impossible", 1996, ("Action", "Adventure", "Thriller"),
                ("Brian De Palma",), ("Tom Cruise", "Jon Voight"),
                110, "film", "mi-1996"),
    MovieRecord("Mission: Impossible II", 2000, ("Action", "Adventure", "Thriller"),
                ("John Woo",), ("Tom Cruise", "Thandie Newton"),
                123, "film", "mi-2-2000"),
    MovieRecord("Mission: Impossible", 1966, ("Crime",),
                ("Bruce Geller",), ("Peter Graves", "Barbara Bain"),
                None, "tv-series", "mi-tv-1966"),
    MovieRecord("Mission: Impossible", 1988, ("Action", "Adventure"),
                ("Bruce Geller",), ("Peter Graves", "Thaao Penghlis"),
                None, "tv-series", "mi-tv-1988"),
)

FRANCHISES: dict[str, tuple[MovieRecord, ...]] = {
    "Jaws": JAWS_FILMS,
    "Die Hard": DIE_HARD_FILMS,
    "Mission: Impossible": MISSION_IMPOSSIBLE_ENTRIES,
}

# Variant templates used to synthesize additional confusable IMDB entries.
# Every synthesized title *extends* the franchise title tokens, so the
# title rule keeps it confusable with the franchise base title (that is
# what "sequels, TV-shows, etc. with … in the title" means in §V).
_VARIANT_TEMPLATES = (
    ("{base}: The Video Game", "video-game", ("Action",)),
    ("{base}: The Series", "tv-series", ("Action", "Adventure")),
    ("The Making of {base}", "documentary", ("Documentary",)),
    ("{base} Special Edition", "video", ("Action", "Thriller")),
    ("{base}: Behind the Scenes", "documentary", ("Documentary",)),
    ("{base} Reloaded", "video", ("Action",)),
)

_VARIANT_DIRECTORS = (
    "Alan Smithee", "Rick Baxter", "Nora Klein",
    "Paolo Venditti", "Greta Hollis", "Marcus Albright",
)


def franchise_base_title(franchise: str) -> str:
    """The title every movie of ``franchise`` shares (franchises are
    keyed by their base title, so this is the identity — kept as a named
    hook so generators read as intent, not coincidence)."""
    return franchise


def confusing_mpeg7_six() -> list[MovieRecord]:
    """The MPEG-7 side of the confusing experiments: two movies per
    franchise (the paper's "2 'Mission Impossible' sequels, 2 'Die Hard'
    sequels, and 2 'Jaws' sequels")."""
    return [
        JAWS_FILMS[0], JAWS_FILMS[1],
        DIE_HARD_FILMS[0], DIE_HARD_FILMS[1],
        MISSION_IMPOSSIBLE_ENTRIES[0], MISSION_IMPOSSIBLE_ENTRIES[1],
    ]


def sequels_six_imdb() -> list[MovieRecord]:
    """The IMDB side of the Table I workload: two entries per franchise,
    exactly one sharing its rwo with :func:`confusing_mpeg7_six`."""
    return [
        JAWS_FILMS[0],            # shared rwo: jaws-1975
        JAWS_FILMS[3],            # Jaws: The Revenge
        DIE_HARD_FILMS[0],        # shared rwo: die-hard-1988
        DIE_HARD_FILMS[2],        # Die Hard: With a Vengeance
        MISSION_IMPOSSIBLE_ENTRIES[0],  # shared rwo: mi-1996
        MISSION_IMPOSSIBLE_ENTRIES[2],  # the 1966 TV series (Crime)
    ]


def confusing_imdb_records(count: int) -> list[MovieRecord]:
    """Up to ``count`` confusable IMDB entries for the Figure 5 sweep.

    Round-robin over the three franchises: first the real entries, then
    synthesized variants.  Variant years alternate between *anchor* years
    (shared with a real film, so the year rule keeps the pair possible)
    and fresh years (so the year rule prunes it) — this is what separates
    the figure's two series.
    """
    if count < 0:
        raise ValueError("count must be non-negative")
    franchise_names = list(FRANCHISES)
    queues: dict[str, list[MovieRecord]] = {
        name: list(entries) for name, entries in FRANCHISES.items()
    }
    synthesized: dict[str, int] = {name: 0 for name in franchise_names}
    records: list[MovieRecord] = []
    position = 0
    while len(records) < count:
        name = franchise_names[position % len(franchise_names)]
        position += 1
        if queues[name]:
            records.append(queues[name].pop(0))
            continue
        index = synthesized[name]
        synthesized[name] += 1
        template, kind, genres = _VARIANT_TEMPLATES[index % len(_VARIANT_TEMPLATES)]
        anchors = [entry.year for entry in FRANCHISES[name][:2]]
        if index % 2 == 0:
            year = anchors[index % len(anchors)]
        else:
            year = 2001 + (index * 3 + position) % 7 + (index // 2)
        director = _VARIANT_DIRECTORS[index % len(_VARIANT_DIRECTORS)]
        records.append(
            MovieRecord(
                template.format(base=name),
                year,
                genres,
                (director,),
                (),
                None,
                kind,
                f"{name.lower().replace(' ', '-').replace(':', '')}-variant-{index}",
            )
        )
    return records


# -- typical conditions (distinct 1995 movies) --------------------------------

_REAL_1995 = (
    ("Braveheart", ("Action", "Drama"), ("Mel Gibson",), ("Mel Gibson", "Sophie Marceau"), 178),
    ("Toy Story", ("Animation", "Comedy"), ("John Lasseter",), ("Tom Hanks", "Tim Allen"), 81),
    ("Se7en", ("Crime", "Thriller"), ("David Fincher",), ("Brad Pitt", "Morgan Freeman"), 127),
    ("Heat", ("Crime", "Drama"), ("Michael Mann",), ("Al Pacino", "Robert De Niro"), 170),
    ("Casino", ("Crime", "Drama"), ("Martin Scorsese",), ("Robert De Niro", "Sharon Stone"), 178),
    ("GoldenEye", ("Action", "Adventure"), ("Martin Campbell",), ("Pierce Brosnan", "Sean Bean"), 130),
    ("Apollo 13", ("Adventure", "Drama"), ("Ron Howard",), ("Tom Hanks", "Kevin Bacon"), 140),
    ("Jumanji", ("Adventure", "Family"), ("Joe Johnston",), ("Robin Williams", "Kirsten Dunst"), 104),
    ("Twelve Monkeys", ("Mystery", "Thriller"), ("Terry Gilliam",), ("Bruce Willis", "Brad Pitt"), 129),
    ("The Usual Suspects", ("Crime", "Mystery"), ("Bryan Singer",), ("Kevin Spacey", "Gabriel Byrne"), 106),
    ("Waterworld", ("Action", "Adventure"), ("Kevin Reynolds",), ("Kevin Costner", "Jeanne Tripplehorn"), 135),
    ("Babe", ("Comedy", "Family"), ("Chris Noonan",), ("James Cromwell", "Magda Szubanski"), 91),
    ("Casper", ("Comedy", "Family"), ("Brad Silberling",), ("Christina Ricci", "Bill Pullman"), 100),
    ("Outbreak", ("Action", "Drama"), ("Wolfgang Petersen",), ("Dustin Hoffman", "Rene Russo"), 127),
    ("Bad Boys", ("Action", "Comedy"), ("Michael Bay",), ("Will Smith", "Martin Lawrence"), 119),
    ("Crimson Tide", ("Action", "Drama"), ("Tony Scott",), ("Denzel Washington", "Gene Hackman"), 116),
    ("Get Shorty", ("Comedy", "Crime"), ("Barry Sonnenfeld",), ("John Travolta", "Gene Hackman"), 105),
    ("Rob Roy", ("Adventure", "Drama"), ("Michael Caton-Jones",), ("Liam Neeson", "Jessica Lange"), 139),
    ("Species", ("Horror", "Sci-Fi"), ("Roger Donaldson",), ("Ben Kingsley", "Natasha Henstridge"), 108),
    ("Sudden Death", ("Action", "Thriller"), ("Peter Hyams",), ("Jean-Claude Van Damme", "Powers Boothe"), 111),
)

# Synthetic 1995 filler titles: invented, multi-word, no token-subset
# collisions with each other or with the real list (checked by tests).
_FILLER_ADJECTIVES = (
    "Velvet", "Amber", "Crimson Static", "Paper", "Glass", "Hollow",
    "Winter", "Neon", "Quiet", "Broken", "Gilded", "Feral",
)
_FILLER_NOUNS = (
    "Horizon", "Parallax", "Cartographer", "Lantern", "Meridian",
    "Orchard", "Icarus", "Pendulum", "Mosaic", "Vertigo Line",
    "Palisade", "Ciphers",
)
_FILLER_GENRES = (
    ("Drama",), ("Comedy", "Drama"), ("Thriller",), ("Romance", "Drama"),
    ("Sci-Fi", "Thriller"), ("Mystery",),
)
_FILLER_PEOPLE = (
    "Harriet Stole", "Ivan Petrakis", "June Okafor", "Silas Marchetti",
    "Theodora Vance", "Ruben Castellanos", "Wilma Drees", "Anton Leverkuhn",
)


def _filler_records(count: int, *, seed: int = 1995) -> list[MovieRecord]:
    rng = random.Random(seed)
    records: list[MovieRecord] = []
    combos = [
        (adjective, noun)
        for adjective in _FILLER_ADJECTIVES
        for noun in _FILLER_NOUNS
    ]
    rng.shuffle(combos)
    for index in range(count):
        adjective, noun = combos[index]
        title = f"{adjective} {noun}"
        director = _FILLER_PEOPLE[index % len(_FILLER_PEOPLE)]
        actor = _FILLER_PEOPLE[(index + 3) % len(_FILLER_PEOPLE)]
        records.append(
            MovieRecord(
                title,
                1995,
                _FILLER_GENRES[index % len(_FILLER_GENRES)],
                (director,),
                (actor,),
                85 + (index * 7) % 60,
                "film",
                f"filler-{index}",
            )
        )
    return records


def typical_imdb_records(count: int = 60) -> list[MovieRecord]:
    """``count`` distinct 1995 movies for the typical-conditions IMDB side
    (real titles first, deterministic synthetic fillers after)."""
    real = [
        MovieRecord(title, 1995, genres, directors, cast, runtime, "film",
                    f"m1995-{title.lower().replace(' ', '-')}")
        for title, genres, directors, cast, runtime in _REAL_1995
    ]
    # Die Hard: With a Vengeance is a real 1995 movie — it is the paper's
    # kind of shared rwo between the franchise world and the 1995 catalog.
    records = [DIE_HARD_FILMS[2]] + real
    if count <= len(records):
        return records[:count]
    return records + _filler_records(count - len(records))


def typical_mpeg7_six() -> list[MovieRecord]:
    """The MPEG-7 side of the typical-conditions experiment: 6 movies
    produced in 1995, exactly two sharing their rwo with
    :func:`typical_imdb_records` (Die Hard: With a Vengeance and
    Braveheart); the other four are real 1995 films absent from the IMDB
    selection."""
    shared = [DIE_HARD_FILMS[2],
              MovieRecord("Braveheart", 1995, ("Action", "Drama"),
                          ("Mel Gibson",), ("Mel Gibson",), 178, "film",
                          "m1995-braveheart")]
    unique = [
        MovieRecord("Dead Man Walking", 1995, ("Crime", "Drama"),
                    ("Tim Robbins",), ("Susan Sarandon", "Sean Penn"), 122,
                    "film", "m1995-dead-man-walking"),
        MovieRecord("Leaving Las Vegas", 1995, ("Drama", "Romance"),
                    ("Mike Figgis",), ("Nicolas Cage", "Elisabeth Shue"), 111,
                    "film", "m1995-leaving-las-vegas"),
        MovieRecord("Sense and Sensibility", 1995, ("Drama", "Romance"),
                    ("Ang Lee",), ("Emma Thompson", "Kate Winslet"), 136,
                    "film", "m1995-sense-and-sensibility"),
        MovieRecord("The Bridges of Madison County", 1995, ("Drama", "Romance"),
                    ("Clint Eastwood",), ("Clint Eastwood", "Meryl Streep"), 135,
                    "film", "m1995-bridges-madison"),
    ]
    return shared + unique
