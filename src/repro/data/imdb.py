"""IMDB-style rendering of movie records.

Conventions of this source (the ones the paper says "never match exactly"
against the other source):

* director and cast names in ``"Family, Given"`` order;
* carries ``runtime`` and ``kind`` fields the MPEG-7 source lacks.

Schemas are assumed aligned (§III): both sources use the same element
names for the fields they share.
"""

from __future__ import annotations

from typing import Iterable, Optional, Sequence

from ..xmlkit.dtd import DTD, parse_dtd
from ..xmlkit.nodes import XDocument, XElement
from .movies import MovieRecord
from .perturb import typo

#: The movie schema used by both sources (the aligned view).
MOVIE_DTD: DTD = parse_dtd(
    """
    <!ELEMENT movies (movie*)>
    <!ELEMENT movie (title, year?, genre*, director*, actor*, runtime?, kind?)>
    <!ELEMENT title (#PCDATA)>
    <!ELEMENT year (#PCDATA)>
    <!ELEMENT genre (#PCDATA)>
    <!ELEMENT director (#PCDATA)>
    <!ELEMENT actor (#PCDATA)>
    <!ELEMENT runtime (#PCDATA)>
    <!ELEMENT kind (#PCDATA)>
    """
)


def family_first(name: str) -> str:
    """'John McTiernan' → 'McTiernan, John' (single-token names pass
    through)."""
    parts = name.split()
    if len(parts) < 2:
        return name
    return f"{parts[-1]}, {' '.join(parts[:-1])}"


def _movie_element(
    record: MovieRecord, *, typo_titles: frozenset[str], seed: int
) -> XElement:
    movie = XElement("movie")
    title = record.title
    if record.title in typo_titles:
        title = typo(title, seed=seed)
    movie.append(XElement("title", children=[title]))
    movie.append(XElement("year", children=[str(record.year)]))
    for genre in record.genres:
        movie.append(XElement("genre", children=[genre]))
    for director in record.directors:
        movie.append(XElement("director", children=[family_first(director)]))
    for actor in record.cast:
        movie.append(XElement("actor", children=[family_first(actor)]))
    if record.runtime is not None:
        movie.append(XElement("runtime", children=[str(record.runtime)]))
    movie.append(XElement("kind", children=[record.kind]))
    return movie


def imdb_document(
    records: Sequence[MovieRecord],
    *,
    typo_titles: Iterable[str] = (),
    seed: int = 42,
) -> XDocument:
    """Render records as the IMDB source document.

    ``typo_titles`` injects a deterministic typo into the named titles —
    used to exercise the title rule's tolerance ("the possibility that the
    'II' may be a typing mistake", §VI).

    >>> from repro.data.movies import sequels_six_imdb
    >>> doc = imdb_document(sequels_six_imdb())
    >>> doc.root.tag
    'movies'
    """
    titles = frozenset(typo_titles)
    root = XElement("movies")
    for index, record in enumerate(records):
        root.append(_movie_element(record, typo_titles=titles, seed=seed + index))
    return XDocument(root)
