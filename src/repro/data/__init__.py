"""Synthetic data sources standing in for the paper's IMDB and MPEG-7
extracts (§V).

The real extracts were never published; these generators reproduce the
*matching problem* they pose instead of their bytes:

* three franchises the paper names — Jaws, Die Hard, Mission: Impossible —
  with sequels, TV shows and other confusable variants sharing title
  tokens;
* the two sources disagree on director-name conventions ("John McTiernan"
  vs "McTiernan, John") so records are never deep-equal;
* a *typical conditions* catalog of distinct 1995 movies where only the
  intended two pairs stay ambiguous;
* the Figure 2 address books.

All generators are deterministic (seeded) so experiments are exactly
reproducible.
"""

from .movies import (
    MovieRecord,
    confusing_imdb_records,
    confusing_mpeg7_six,
    sequels_six_imdb,
    typical_imdb_records,
    typical_mpeg7_six,
)
from .imdb import imdb_document, MOVIE_DTD
from .mpeg7 import mpeg7_document
from .addressbook import ADDRESSBOOK_DTD, addressbook_documents
from .perturb import typo

__all__ = [
    "MovieRecord",
    "confusing_mpeg7_six",
    "sequels_six_imdb",
    "confusing_imdb_records",
    "typical_mpeg7_six",
    "typical_imdb_records",
    "imdb_document",
    "mpeg7_document",
    "MOVIE_DTD",
    "addressbook_documents",
    "ADDRESSBOOK_DTD",
    "typo",
]
