"""The Figure 2 address books.

Two sources, both containing a person named "John" with different phone
numbers; the DTD says a person has exactly one phone — so integration
must produce exactly the paper's three possible worlds.
"""

from __future__ import annotations

from typing import Sequence

from ..xmlkit.dtd import DTD, parse_dtd
from ..xmlkit.nodes import XDocument, XElement

ADDRESSBOOK_DTD: DTD = parse_dtd(
    """
    <!ELEMENT addressbook (person*)>
    <!ELEMENT person (nm, tel)>
    <!ELEMENT nm (#PCDATA)>
    <!ELEMENT tel (#PCDATA)>
    """
)


def _book(entries: Sequence[tuple[str, str]]) -> XDocument:
    root = XElement("addressbook")
    for name, telephone in entries:
        root.append(
            XElement(
                "person",
                children=[
                    XElement("nm", children=[name]),
                    XElement("tel", children=[telephone]),
                ],
            )
        )
    return XDocument(root)


def addressbook_documents(
    entries_a: Sequence[tuple[str, str]] = (("John", "1111"),),
    entries_b: Sequence[tuple[str, str]] = (("John", "2222"),),
) -> tuple[XDocument, XDocument]:
    """The two address books of Figure 2 (customisable for larger
    experiments: pass lists of (name, phone) pairs).

    >>> book_a, book_b = addressbook_documents()
    >>> book_a.root.child_elements("person")[0].find("nm").text()
    'John'
    """
    return _book(entries_a), _book(entries_b)
