"""Exact probability arithmetic helpers.

All probabilities in this library are :class:`fractions.Fraction` values so
that possible-world semantics, event inference and Bayesian conditioning are
*exact*: world probabilities sum to exactly 1, conditioning is exact Bayes,
and tests can assert equality instead of tolerances.  Floats are accepted at
API boundaries and converted, and only turned back into floats for display.
"""

from __future__ import annotations

from fractions import Fraction
from typing import Iterable, Union

from .errors import ProbabilityError

ProbLike = Union[Fraction, int, float, str]

ZERO = Fraction(0)
ONE = Fraction(1)
HALF = Fraction(1, 2)

# Floats are converted through ``Fraction(str(x))`` by default (so 0.1 means
# the decimal 1/10, not the binary float), capped at this many denominator
# digits to keep user-supplied values tidy.
_FLOAT_DENOMINATOR_LIMIT = 10**9


def as_probability(value: ProbLike, *, allow_zero: bool = True) -> Fraction:
    """Coerce ``value`` to an exact probability in [0, 1].

    Accepts :class:`Fraction`, :class:`int`, :class:`float` and strings such
    as ``"1/3"`` or ``"0.25"``.  Raises :class:`ProbabilityError` when the
    value is outside [0, 1] (or equals 0 while ``allow_zero`` is false).

    >>> as_probability("1/3")
    Fraction(1, 3)
    >>> as_probability(0.5)
    Fraction(1, 2)
    """
    if isinstance(value, Fraction):
        prob = value
    elif isinstance(value, bool):
        raise ProbabilityError(f"booleans are not probabilities: {value!r}")
    elif isinstance(value, int):
        prob = Fraction(value)
    elif isinstance(value, float):
        try:
            prob = Fraction(str(value)).limit_denominator(_FLOAT_DENOMINATOR_LIMIT)
        except (ValueError, ZeroDivisionError) as exc:
            raise ProbabilityError(f"not a probability: {value!r}") from exc
    elif isinstance(value, str):
        try:
            prob = Fraction(value)
        except (ValueError, ZeroDivisionError) as exc:
            raise ProbabilityError(f"not a probability: {value!r}") from exc
    else:
        raise ProbabilityError(f"cannot interpret {value!r} as a probability")

    if prob < 0 or prob > 1:
        raise ProbabilityError(f"probability {prob} outside [0, 1]")
    if prob == 0 and not allow_zero:
        raise ProbabilityError("probability must be strictly positive")
    return prob


def format_probability(prob: Fraction, *, digits: int = 4) -> str:
    """Render a probability as a compact decimal string, e.g. ``0.9667``."""
    return f"{float(prob):.{digits}f}"


def format_percent(prob: Fraction, *, digits: int = 0) -> str:
    """Render a probability as a percentage, e.g. ``97%`` — the paper's
    ranked-answer display format (§VI)."""
    return f"{float(prob) * 100:.{digits}f}%"


def normalize(weights: Iterable[Fraction]) -> list[Fraction]:
    """Scale non-negative weights so they sum to exactly 1.

    Raises :class:`ProbabilityError` when the weights are all zero (nothing
    to normalise) or any weight is negative.
    """
    values = list(weights)
    if any(w < 0 for w in values):
        raise ProbabilityError("weights must be non-negative")
    total = sum(values, ZERO)
    if total == 0:
        raise ProbabilityError("cannot normalise: total weight is zero")
    # impreciselint: disable=float-taint -- exact Fraction/Fraction division
    return [w / total for w in values]


def check_distribution(probs: Iterable[Fraction], *, strict: bool = True) -> None:
    """Validate that ``probs`` forms a (sub-)distribution.

    With ``strict`` the probabilities must sum to exactly 1; otherwise any
    total in (0, 1] is accepted (the layered model allows sub-distributions
    only transiently, during construction).
    """
    values = list(probs)
    if not values:
        raise ProbabilityError("a distribution needs at least one probability")
    for prob in values:
        if prob < 0 or prob > 1:
            raise ProbabilityError(f"probability {prob} outside [0, 1]")
    total = sum(values, ZERO)
    if strict and total != 1:
        raise ProbabilityError(f"probabilities sum to {total}, expected 1")
    if not strict and (total <= 0 or total > 1):
        raise ProbabilityError(f"probabilities sum to {total}, expected (0, 1]")
