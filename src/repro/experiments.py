"""Canonical experiment setups for the paper's tables and figures.

Everything a benchmark, example or test needs to reproduce a §V/§VI
experiment lives here, so all of them run the *same* calibrated workload:

* :func:`standard_rules` — the oracle rule stack: deep-equal (generic),
  the requested domain rules (genre/title/year), person-name matching for
  director/actor leaves, and the leaf-value fallback;
* :func:`table1_sources` / :func:`table1_config` — the sequels-six
  workload behind Table I (joint representation, like the original);
* :func:`figure5_sources` — 6 MPEG-7 movies vs N confusing IMDB entries;
* :func:`typical_sources` — 6 vs 60 under typical conditions (§V);
* :func:`section6_document` — the confusing integration §VI queries run
  against, plus the paper's two queries as constants.
"""

from __future__ import annotations

from typing import Optional, Sequence

from .core.domain import movie_rules
from .core.engine import IntegrationConfig, IntegrationResult, Integrator
from .core.oracle import ConstantPrior, Oracle
from .core.rules import (
    DeepEqualRule,
    LeafValueRule,
    PersonNameReconciler,
    PersonNameRule,
    Rule,
)
from .data.imdb import MOVIE_DTD, imdb_document
from .data.movies import (
    confusing_imdb_records,
    confusing_mpeg7_six,
    sequels_six_imdb,
    typical_imdb_records,
    typical_mpeg7_six,
)
from .data.mpeg7 import mpeg7_document
from .probability import HALF, ProbLike
from .xmlkit.nodes import XDocument

#: Table I's rule-set rows, in the paper's order.
TABLE1_ROWS: tuple[tuple[str, tuple[str, ...]], ...] = (
    ("none", ()),
    ("Genre rule", ("genre",)),
    ("Movie title rule", ("title",)),
    ("Genre and movie title rule", ("genre", "title")),
    ("Genre, movie title and year rule", ("genre", "title", "year")),
)

#: Table I's paper-reported node counts (×1000), same order as TABLE1_ROWS.
TABLE1_PAPER_NODES_X1000: tuple[int, ...] = (13958, 6015, 243, 154, 29)

#: Figure 5's two series.
FIGURE5_SERIES: tuple[tuple[str, tuple[str, ...]], ...] = (
    ("Only movie title rule", ("title",)),
    ("Movie title+year rule", ("title", "year")),
)

#: §VI's example queries, verbatim from the paper.
QUERY_HORROR = '//movie[.//genre="Horror"]/title'
QUERY_JOHN = '//movie[some $d in .//director satisfies contains($d,"John")]/title'


def standard_rules(*domain_names: str, title_threshold: float = 0.65) -> list[Rule]:
    """The full oracle stack for the movie experiments.

    Order matters: certain positive evidence first (deep equality), then
    the domain pruning rules, then the leaf-matching rules that keep
    sub-element merging sane.
    """
    rules: list[Rule] = [DeepEqualRule()]
    rules.extend(movie_rules(*domain_names, title_threshold=title_threshold))
    rules.append(PersonNameRule(("director", "actor")))
    rules.append(LeafValueRule())
    return rules


def movie_oracle(
    *domain_names: str,
    prior: ProbLike = HALF,
    title_threshold: float = 0.65,
) -> Oracle:
    """Oracle with the standard stack and a constant uncertain prior."""
    return Oracle(
        standard_rules(*domain_names, title_threshold=title_threshold),
        prior=ConstantPrior(prior),
    )


def movie_config(
    *domain_names: str,
    factor_components: bool = True,
    max_possibilities: int = 20_000,
    prior: ProbLike = HALF,
) -> IntegrationConfig:
    """Integration config for the movie workloads."""
    return IntegrationConfig(
        oracle=movie_oracle(*domain_names, prior=prior),
        dtd=MOVIE_DTD,
        factor_components=factor_components,
        max_possibilities=max_possibilities,
        # Name-convention differences are renderings, not possible worlds.
        reconcilers=(PersonNameReconciler(("director", "actor")),),
    )


# -- Table I -------------------------------------------------------------------

def table1_sources() -> tuple[XDocument, XDocument]:
    """Sequels-six vs sequels-six: 2 Jaws + 2 Die Hard + 2 M:I per source,
    one shared real-world object per franchise."""
    return mpeg7_document(confusing_mpeg7_six()), imdb_document(sequels_six_imdb())


def table1_config(
    rule_names: Sequence[str], *, factor_components: bool = False
) -> IntegrationConfig:
    """Joint (unfactored) representation by default — the paper's node
    counts match joint enumeration (see DESIGN.md)."""
    return movie_config(
        *rule_names,
        factor_components=factor_components,
        max_possibilities=50_000,
    )


def run_table1_row(
    rule_names: Sequence[str], *, factor_components: bool = False
) -> IntegrationResult:
    """Materialise one Table I row and return the integration result."""
    source_a, source_b = table1_sources()
    config = table1_config(rule_names, factor_components=factor_components)
    return Integrator(config).integrate(source_a, source_b)


# -- Figure 5 ---------------------------------------------------------------------

def figure5_sources(imdb_count: int) -> tuple[XDocument, XDocument]:
    """6 confusing MPEG-7 movies vs ``imdb_count`` confusing IMDB entries."""
    return (
        mpeg7_document(confusing_mpeg7_six()),
        imdb_document(confusing_imdb_records(imdb_count)),
    )


# -- §V typical conditions ------------------------------------------------------------

def typical_sources(imdb_count: int = 60) -> tuple[XDocument, XDocument]:
    """6 MPEG-7 movies produced in 1995 vs ``imdb_count`` IMDB movies,
    two shared real-world objects."""
    return (
        mpeg7_document(typical_mpeg7_six()),
        imdb_document(typical_imdb_records(imdb_count)),
    )


def run_typical(imdb_count: int = 60) -> IntegrationResult:
    """The §V typical-conditions integration: full rule set, factored
    representation (the compact result the paper calls ~3500 nodes)."""
    source_a, source_b = typical_sources(imdb_count)
    config = movie_config("genre", "title", "year", factor_components=True)
    return Integrator(config).integrate(source_a, source_b)


# -- §VI querying -----------------------------------------------------------------------

def section6_sources() -> tuple[XDocument, XDocument]:
    """The confusing sources behind the §VI query demonstration.

    Hand-picked so the paper's two example queries have the same answer
    *structure*: Jaws and Jaws 2 are the only Horror movies (both sides,
    mutually confusable → both ranked just below 100 %); Die Hard: With a
    Vengeance (John McTiernan) exists only in IMDB and is confusable with
    nothing → 100 %; Mission: Impossible II (John Woo) may merge with
    IMDB's Mission: Impossible ("the 'II' may be a typing mistake") → the
    II answer ranks high, the bare title appears as a low-probability
    incorrect answer.  The 1966 TV series (genre Crime) is dead weight the
    genre rule must eliminate.
    """
    from .data.movies import (
        DIE_HARD_FILMS,
        JAWS_FILMS,
        MISSION_IMPOSSIBLE_ENTRIES,
    )

    mpeg7_records = [
        JAWS_FILMS[0], JAWS_FILMS[1],
        DIE_HARD_FILMS[1],
        MISSION_IMPOSSIBLE_ENTRIES[1],      # Mission: Impossible II (John Woo)
    ]
    imdb_records = [
        JAWS_FILMS[0], JAWS_FILMS[1],
        DIE_HARD_FILMS[1],
        DIE_HARD_FILMS[2],                  # With a Vengeance (John McTiernan)
        MISSION_IMPOSSIBLE_ENTRIES[0],      # Mission: Impossible (Brian De Palma)
        MISSION_IMPOSSIBLE_ENTRIES[2],      # the 1966 TV series (Crime)
    ]
    return mpeg7_document(mpeg7_records), imdb_document(imdb_records)


#: Uncertain-pair prior for the §VI document: slightly sceptical of
#: matches, like a typo is *possible* but not the default reading.
SECTION6_PRIOR = "2/5"


def section6_document(prior: ProbLike = SECTION6_PRIOR) -> IntegrationResult:
    """Integrate the §VI workload (title+genre rules; no year rule — the
    'II may be a typing mistake' uncertainty must survive)."""
    source_a, source_b = section6_sources()
    config = movie_config("genre", "title", factor_components=True, prior=prior)
    return Integrator(config).integrate(source_a, source_b)
