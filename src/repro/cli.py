"""Command-line interface: the demo workflow (§VII) without the GUI.

Subcommands::

    imprecise integrate a.xml b.xml -o out.pxml --rules genre,title,year
    imprecise query out.pxml '//movie[.//genre="Horror"]/title'
    imprecise query out.pxml --batch '//movie/title' '//movie/year'
    imprecise query out.pxml --queries-file workload.txt --cache-stats
    imprecise query out.pxml //movie --aggregate count
    imprecise query out.pxml //price --aggregate sum
    imprecise stats out.pxml
    imprecise worlds out.pxml --limit 20
    imprecise feedback out.pxml '//movie/title' 'Jaws' --correct -o out.pxml
    imprecise estimate a.xml b.xml --rules title --joint
    imprecise serve store/ --cache-dir cache/ --exec 'query movies //movie/title'
    imprecise serve store/ --cache-dir cache/ --http 127.0.0.1:8080
    imprecise serve store/ --cache-dir cache/ --http 127.0.0.1:8080 --workers 4

``imprecise serve`` runs the :class:`~repro.dbms.service.DataspaceService`
over a store directory: commands come from ``--exec`` flags (in order) or
line-by-line from stdin, answers go to stdout, and — with ``--cache-dir``
— priced answers persist so a restarted service starts warm.  See
``docs/api.md`` for the command protocol.  With ``--http HOST:PORT`` the
same service is exposed as a JSON API over a dependency-free asyncio
HTTP server (see ``docs/http_api.md``); shut down with SIGINT/SIGTERM.
``--workers N`` pre-forks N such servers behind a consistent-hash
document-sharding router (:mod:`repro.server.multiproc`).

Exit status: 0 on success, 1 on any library error (message on stderr).
"""

from __future__ import annotations

import argparse
import asyncio
import shlex
import signal
import sys
from pathlib import Path
from typing import Optional, Sequence

from .core.engine import IntegrationConfig, Integrator
from .core.estimate import estimate_integration
from .dbms.service import DataspaceService, format_cache_stats
from .core.oracle import ConstantPrior, Oracle
from .core.rules import PersonNameReconciler
from .errors import ImpreciseError
from .experiments import standard_rules
from .feedback.conditioning import FeedbackSession
from .probability import format_percent
from .pxml.model import PXDocument
from .pxml.serialize import parse_pxml, pxml_to_text
from .pxml.stats import tree_stats
from .pxml.worlds import iter_worlds
from .query.engine import ProbQueryEngine, QueryEngine
from .query.fusion import DEFAULT_RRF_K, FUSION_STRATEGIES
from .xmlkit.dtd import parse_dtd
from .xmlkit.parser import parse_document
from .xmlkit.serializer import serialize


def _load_plain(path: str):
    return parse_document(Path(path).read_text(encoding="utf-8"))


def _load_pxml(path: str) -> PXDocument:
    return parse_pxml(Path(path).read_text(encoding="utf-8"))


def _build_config(args: argparse.Namespace) -> IntegrationConfig:
    rule_names = [name for name in (args.rules or "").split(",") if name]
    oracle = Oracle(standard_rules(*rule_names), prior=ConstantPrior(args.prior))
    dtd = None
    if args.dtd:
        dtd = parse_dtd(Path(args.dtd).read_text(encoding="utf-8"))
    return IntegrationConfig(
        oracle=oracle,
        dtd=dtd,
        factor_components=not args.joint,
        max_possibilities=args.max_possibilities,
        reconcilers=(PersonNameReconciler(("director", "actor")),),
    )


def _cmd_integrate(args: argparse.Namespace) -> int:
    config = _build_config(args)
    result = Integrator(config).integrate(_load_plain(args.source_a), _load_plain(args.source_b))
    Path(args.output).write_text(
        pxml_to_text(result.document, pretty=args.pretty), encoding="utf-8"
    )
    print(result.report.summary())
    return 0


def _cmd_estimate(args: argparse.Namespace) -> int:
    config = _build_config(args)
    estimate = estimate_integration(
        _load_plain(args.source_a), _load_plain(args.source_b), config
    )
    print(f"nodes:         {estimate.total_nodes:,}")
    print(f"worlds:        {estimate.world_count:,}")
    print(f"possibilities: {estimate.possibility_count:,}")
    for group in estimate.groups:
        print(
            f"  group <{group.tag}> under <{group.parent_tag}>:"
            f" {group.components} component(s),"
            f" {group.joint_matchings:,} joint matchings"
        )
    return 0


def _cmd_query(args: argparse.Namespace) -> int:
    queries = list(args.xpath)
    if args.queries_file:
        lines = Path(args.queries_file).read_text(encoding="utf-8").splitlines()
        queries.extend(
            line.strip() for line in lines if line.strip() and not line.lstrip().startswith("#")
        )
    if not queries:
        print("error: no queries given", file=sys.stderr)
        return 1
    if args.text is not None and not args.aggregate:
        raise ImpreciseError("--text requires --aggregate")
    if args.all and args.glob is not None:
        raise ImpreciseError("pass either --all or --glob PATTERN, not both")
    if args.allow_partial and args.deadline_ms is None:
        raise ImpreciseError("--allow-partial requires --deadline-ms")
    if args.all or args.glob is not None:
        return _run_search(args, queries)
    if args.fusion is not None or args.rrf_k is not None:
        raise ImpreciseError("--fusion/--rrf-k require --all or --glob")
    if args.deadline_ms is not None:
        raise ImpreciseError("--deadline-ms requires --all or --glob")
    document = _load_pxml(args.document)
    if args.aggregate:
        if args.batch:
            raise ImpreciseError(
                "--batch does not combine with --aggregate (each target"
                " is already one exact distribution)"
            )
        return _run_aggregates(document, args, queries)
    engine = QueryEngine(document, use_cache=not args.no_cache)
    if args.batch or len(queries) > 1:
        answers = engine.run_batch(queries)
        for query_text, answer in zip(queries, answers):
            print(f"== {query_text}")
            print(answer.as_table())
    else:
        print(engine.run(queries[0]).as_table())
    if args.cache_stats:
        stats = engine.cache_stats()
        print(
            f"cache: {stats.get('entries', 0):,} entries,"
            f" {stats.get('hits', 0):,} hits, {stats.get('misses', 0):,} misses",
            file=sys.stderr,
        )
    return 0


def _run_search(args: argparse.Namespace, queries: Sequence[str]) -> int:
    """``imprecise query STORE_DIR XPATH... --all|--glob PATTERN
    [--fusion prob|rrf] [--rrf-k K]`` — fan each query across the
    store's documents and print one fused ranked result (with
    ``document#rank`` provenance per value); with ``--aggregate KIND``,
    print the exact mixture distribution instead."""
    directory = Path(args.document)
    if not directory.is_dir():
        raise ImpreciseError(
            "--all/--glob query a document store directory"
            f" (as served by 'imprecise serve'), got {args.document!r}"
        )
    if args.batch:
        raise ImpreciseError(
            "--batch does not combine with --all/--glob (a fan-out"
            " already prices every document in one pass)"
        )
    strategy = args.fusion if args.fusion is not None else "prob"
    rrf_k = args.rrf_k if args.rrf_k is not None else DEFAULT_RRF_K
    if args.aggregate and args.fusion is not None:
        raise ImpreciseError(
            "--aggregate fan-outs always fuse by exact probability"
            " mixture; --fusion only applies to ranked queries"
        )
    if args.aggregate and args.allow_partial:
        raise ImpreciseError(
            "--allow-partial only applies to ranked fan-outs: a partial"
            " aggregate would renormalize into the wrong distribution"
        )
    from .deadline import Deadline
    from .query.aggregates import format_distribution

    with DataspaceService(directory=directory) as service:
        for query_text in queries:
            # Each query gets its own fresh budget: the flag bounds one
            # fan-out, not the whole workload.
            deadline = (
                Deadline.from_ms(args.deadline_ms)
                if args.deadline_ms is not None
                else None
            )
            if len(queries) > 1 or args.aggregate:
                label = f"== {query_text}"
                if args.aggregate:
                    label = f"== {args.aggregate} {query_text}"
                    if args.text is not None:
                        label += f" [text={args.text!r}]"
                print(label)
            if args.aggregate:
                distribution = service.aggregate_all(
                    args.aggregate, query_text, text=args.text,
                    glob=args.glob, deadline=deadline,
                )
                print(format_distribution(distribution))
            else:
                fused = service.query_all(
                    query_text,
                    glob=args.glob,
                    strategy=strategy,
                    rrf_k=rrf_k,
                    deadline=deadline,
                    allow_partial=args.allow_partial,
                )
                print(fused.as_table())
        if args.cache_stats:
            print(format_cache_stats(service.cache_stats()), file=sys.stderr)
    return 0


def _run_aggregates(
    document: PXDocument, args: argparse.Namespace, targets: Sequence[str]
) -> int:
    """``imprecise query DOC TARGET... --aggregate KIND [--text T]`` —
    exact aggregate distributions by tree convolution (no enumeration)."""
    from .query.aggregates import (
        aggregate_distribution,
        expected_value,
        format_distribution,
    )

    for target in targets:
        distribution = aggregate_distribution(
            document,
            args.aggregate,
            target,
            text=args.text,
            use_cache=not args.no_cache,
        )
        label = f"== {args.aggregate} {target}"
        if args.text is not None:
            label += f" [text={args.text!r}]"
        print(label)
        print(format_distribution(distribution))
        if args.aggregate in ("count", "sum"):
            print(f"expected: {expected_value(distribution)}")
    if args.cache_stats:
        from .pxml.events_cache import cache_for

        # Only the aggregate side-table counter is meaningful here: the
        # hit/miss counters belong to the event-probability memo, which
        # a pure aggregate run never touches.
        stats = {} if args.no_cache else cache_for(document).stats()
        print(
            f"cache: {stats.get('aggregates', 0):,} aggregate"
            " distribution(s) memoized",
            file=sys.stderr,
        )
    return 0


def _cmd_stats(args: argparse.Namespace) -> int:
    stats = tree_stats(_load_pxml(args.document))
    print(f"total nodes:       {stats.total:,}")
    print(f"  probability:     {stats.probability_nodes:,}")
    print(f"  possibility:     {stats.possibility_nodes:,}")
    print(f"  element:         {stats.element_nodes:,}")
    print(f"  text:            {stats.text_nodes:,}")
    print(f"choice points:     {stats.choice_points:,}")
    print(f"max branching:     {stats.max_branching:,}")
    print(f"possible worlds:   {stats.world_count:,}")
    return 0


def _cmd_worlds(args: argparse.Namespace) -> int:
    document = _load_pxml(args.document)
    for index, world in enumerate(iter_worlds(document, limit=args.limit)):
        print(f"[{format_percent(world.probability, digits=2)}] {serialize(world.document)}")
        if index + 1 >= args.limit:
            break
    return 0


def _cmd_feedback(args: argparse.Namespace) -> int:
    session = FeedbackSession(_load_pxml(args.document))
    if args.correct:
        step = session.confirm(args.xpath, args.value)
    else:
        step = session.reject(args.xpath, args.value)
    output = args.output or args.document
    Path(output).write_text(pxml_to_text(session.document), encoding="utf-8")
    print(
        f"{step.kind} {step.value!r} (prior {format_percent(step.prior)}):"
        f" worlds {step.worlds_before:,} → {step.worlds_after:,},"
        f" nodes {step.nodes_before:,} → {step.nodes_after:,}"
    )
    return 0


def _serve_dispatch(service: DataspaceService, line: str) -> bool:
    """Execute one service-protocol line; returns False on ``quit``.

    Protocol (one command per line, shell-style quoting)::

        list
        put NAME FILE              # load an .xml/.pxml file into the store
        query NAME XPATH
        search XPATH [GLOB [STRATEGY [K]]]       # fan-out + fusion; GLOB
                                                 # default '*', STRATEGY
                                                 # prob|rrf, K the rrf
                                                 # dampening constant
        batch NAME XPATH [XPATH ...]
        aggregate NAME KIND TARGET [TEXT]        # KIND: count|sum|min|max|exists
        stats NAME
        integrate NAME_A NAME_B OUTPUT [RULES]   # RULES: comma list
        feedback NAME XPATH VALUE correct|incorrect
        delete NAME
        cache-stats
        quit
    """
    tokens = shlex.split(line, comments=True)
    if not tokens:
        return True
    command, arguments = tokens[0], tokens[1:]
    if command in ("quit", "exit"):
        return False
    if command == "list":
        for entry in service.documents():
            print(f"{entry['kind']:4s} {entry['name']}")
        return True
    if command == "put":
        if len(arguments) != 2:
            raise ImpreciseError("usage: put NAME FILE")
        name, path = arguments
        text = Path(path).read_text(encoding="utf-8")
        if path.endswith(".pxml"):
            service.load_document(name, parse_pxml(text))
        else:
            service.load(name, text)
        print(f"stored {name}")
        return True
    if command == "query":
        if len(arguments) != 2:
            raise ImpreciseError("usage: query NAME XPATH")
        print(service.query(arguments[0], arguments[1]).as_table())
        return True
    if command == "search":
        if not 1 <= len(arguments) <= 4:
            raise ImpreciseError("usage: search XPATH [GLOB [STRATEGY [K]]]")
        fused = service.query_all(
            arguments[0],
            glob=arguments[1] if len(arguments) >= 2 else "*",
            strategy=arguments[2] if len(arguments) >= 3 else "prob",
            rrf_k=arguments[3] if len(arguments) == 4 else DEFAULT_RRF_K,
        )
        print(fused.as_table())
        return True
    if command == "batch":
        if len(arguments) < 2:
            raise ImpreciseError("usage: batch NAME XPATH [XPATH ...]")
        name, queries = arguments[0], arguments[1:]
        for query_text, answer in zip(queries, service.run_batch(name, queries)):
            print(f"== {query_text}")
            print(answer.as_table())
        return True
    if command == "aggregate":
        if len(arguments) not in (3, 4):
            raise ImpreciseError(
                "usage: aggregate NAME KIND TARGET [TEXT]"
            )
        from .query.aggregates import format_distribution

        distribution = service.aggregate(
            arguments[0],
            arguments[1],
            arguments[2],
            text=arguments[3] if len(arguments) == 4 else None,
        )
        print(format_distribution(distribution))
        return True
    if command == "stats":
        if len(arguments) != 1:
            raise ImpreciseError("usage: stats NAME")
        print(service.stats(arguments[0]).summary())
        return True
    if command == "integrate":
        if len(arguments) not in (3, 4):
            raise ImpreciseError("usage: integrate NAME_A NAME_B OUTPUT [RULES]")
        rule_names = [n for n in (arguments[3] if len(arguments) == 4 else "").split(",") if n]
        report = service.integrate(
            arguments[0], arguments[1], arguments[2],
            rules=standard_rules(*rule_names),
        )
        print(report.summary())
        return True
    if command == "feedback":
        if len(arguments) != 4 or arguments[3] not in ("correct", "incorrect"):
            raise ImpreciseError(
                "usage: feedback NAME XPATH VALUE correct|incorrect"
            )
        step = service.feedback(
            arguments[0], arguments[1], arguments[2],
            correct=arguments[3] == "correct",
        )
        print(
            f"{step.kind} {step.value!r}:"
            f" worlds {step.worlds_before:,} → {step.worlds_after:,}"
        )
        return True
    if command == "delete":
        if len(arguments) != 1:
            raise ImpreciseError("usage: delete NAME")
        service.delete(arguments[0])
        print(f"deleted {arguments[0]}")
        return True
    if command == "cache-stats":
        print(format_cache_stats(service.cache_stats()))
        return True
    raise ImpreciseError(f"unknown service command {command!r}")


def _parse_http_address(text: str) -> tuple:
    """``HOST:PORT`` (or bare ``PORT``) → ``(host, port)``; port 0 binds
    an ephemeral port that the startup line reports.  IPv6 hosts use the
    usual bracket syntax (``[::1]:8080``); the brackets are stripped —
    ``getaddrinfo`` wants the bare address."""
    host, _, port_text = text.rpartition(":")
    bracketed = host.startswith("[") and host.endswith("]")
    host = host.strip("[]") or "127.0.0.1"
    try:
        port = int(port_text)
        if not 0 <= port <= 65535:
            raise ValueError
        if ":" in host and not bracketed:
            # A bare IPv6 address ("::1") would silently misparse into
            # host="::"/port=1 and die much later at bind.
            raise ValueError
    except ValueError:
        raise ImpreciseError(
            f"invalid --http address {text!r}"
            " (expected HOST:PORT; bracket IPv6 hosts: [::1]:PORT)"
        ) from None
    return host, port


def _serve_http(
    service: DataspaceService,
    host: str,
    port: int,
    *,
    max_pending: Optional[int] = None,
    slow_ms: int = 500,
) -> int:
    """Run the asyncio HTTP front until SIGINT/SIGTERM, then shut down
    gracefully (in-flight requests finish, idle connections close)."""
    from .server.app import ServerApp
    from .server.http import HTTPServer

    app = ServerApp(service, max_pending=max_pending, slow_ms=slow_ms)

    async def _run() -> None:
        server = HTTPServer(app, host, port)
        bound_host, bound_port = await server.start()
        # Parsed by clients/tests launching the server as a subprocess;
        # keep the shape stable (a valid URL — IPv6 hosts re-bracketed).
        display = f"[{bound_host}]" if ":" in bound_host else bound_host
        print(f"serving on http://{display}:{bound_port}", flush=True)
        stop = asyncio.Event()
        loop = asyncio.get_running_loop()
        for signum in (signal.SIGINT, signal.SIGTERM):
            try:
                loop.add_signal_handler(signum, stop.set)
            except (NotImplementedError, RuntimeError):
                pass  # e.g. Windows event loops; Ctrl-C still raises
        try:
            await stop.wait()
        except KeyboardInterrupt:
            pass
        finally:
            await server.shutdown()
            app.close()

    try:
        asyncio.run(_run())
    except KeyboardInterrupt:
        pass
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    if args.http and args.commands:
        raise ImpreciseError(
            "--http runs the network front; --exec commands drive the"
            " line protocol — use one or the other"
        )
    if args.workers is not None and args.workers < 1:
        raise ImpreciseError(f"--workers must be >= 1, got {args.workers}")
    if args.max_pending is not None and args.max_pending < 1:
        raise ImpreciseError(
            f"--max-pending must be >= 1, got {args.max_pending}"
        )
    if args.slow_ms < 0:
        raise ImpreciseError(f"--slow-ms must be >= 0, got {args.slow_ms}")
    if args.workers is not None and args.workers > 1:
        if not args.http:
            raise ImpreciseError("--workers N requires --http HOST:PORT")
        if args.cache_stats:
            raise ImpreciseError(
                "--cache-stats reports one process's counters; with"
                " --workers scrape GET /stats on the router instead"
            )
        from .server.multiproc import run_multiproc

        # The children own the store and cache; the parent only routes.
        # Tuning flags are forwarded so every worker serves identically.
        worker_args: list = ["--slow-ms", str(args.slow_ms)]
        if args.max_cached is not None:
            worker_args += ["--max-cached", str(args.max_cached)]
        if args.cache_max_rows is not None:
            worker_args += ["--cache-max-rows", str(args.cache_max_rows)]
        if args.max_pending is not None:
            worker_args += ["--max-pending", str(args.max_pending)]
        host, port = _parse_http_address(args.http)
        return run_multiproc(
            args.directory,
            host,
            port,
            args.workers,
            cache_dir=args.cache_dir,
            worker_args=worker_args,
            slow_ms=args.slow_ms,
        )
    service = DataspaceService(
        directory=args.directory,
        cache_dir=args.cache_dir,
        max_cached_documents=args.max_cached,
        cache_max_rows=args.cache_max_rows,
    )
    status = 0
    try:
        if args.http:
            status = _serve_http(
                service,
                *_parse_http_address(args.http),
                max_pending=args.max_pending,
                slow_ms=args.slow_ms,
            )
        else:
            if args.commands:
                lines = iter(args.commands)
            else:
                lines = (line.rstrip("\n") for line in sys.stdin)
            for line in lines:
                try:
                    if not _serve_dispatch(service, line):
                        break
                except (ImpreciseError, OSError, ValueError) as error:
                    # One bad command must not kill a serving loop.
                    print(f"error: {error}", file=sys.stderr)
                    status = 1
        if args.cache_stats:
            # Same counters, same rendering as the `cache-stats` protocol
            # command and the HTTP front's GET /stats (one code path).
            print(format_cache_stats(service.cache_stats()), file=sys.stderr)
    finally:
        service.close()
    return status


def build_parser() -> argparse.ArgumentParser:
    """The ``imprecise`` argument parser (one subcommand per verb)."""
    parser = argparse.ArgumentParser(
        prog="imprecise",
        description="IMPrECISE: good-is-good-enough probabilistic XML data integration",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    def add_integration_options(p: argparse.ArgumentParser) -> None:
        p.add_argument("source_a", help="first source XML file")
        p.add_argument("source_b", help="second source XML file")
        p.add_argument("--rules", default="", help="comma list: genre,title,year")
        p.add_argument("--dtd", default=None, help="DTD file with cardinalities")
        p.add_argument("--prior", default="1/2", help="uncertain-match prior")
        p.add_argument("--joint", action="store_true",
                       help="joint (unfactored) representation, as in the paper")
        p.add_argument("--max-possibilities", type=int, default=20_000)

    p_int = sub.add_parser("integrate", help="integrate two XML sources")
    add_integration_options(p_int)
    p_int.add_argument("-o", "--output", required=True, help="output .pxml file")
    p_int.add_argument("--pretty", action="store_true")
    p_int.set_defaults(handler=_cmd_integrate)

    p_est = sub.add_parser("estimate", help="size-estimate an integration without running it")
    add_integration_options(p_est)
    p_est.set_defaults(handler=_cmd_estimate)

    p_query = sub.add_parser("query", help="ranked probabilistic XPath query")
    p_query.add_argument("document",
                         help=".pxml file (with --all/--glob: a document"
                              " store directory)")
    p_query.add_argument("xpath", nargs="*", help="one or more XPath queries")
    p_query.add_argument("--all", action="store_true",
                         help="fan the query across every document in the"
                              " store directory and fuse the answers")
    p_query.add_argument("--glob", default=None, metavar="PATTERN",
                         help="like --all, restricted to document names"
                              " matching a shell-style pattern")
    p_query.add_argument("--fusion", default=None,
                         choices=FUSION_STRATEGIES,
                         help="fusion strategy for --all/--glob:"
                              " 'prob' (exact probability-weighted, default)"
                              " or 'rrf' (exact-rational reciprocal rank)")
    p_query.add_argument("--rrf-k", default=None, type=int, metavar="K",
                         help="reciprocal-rank-fusion dampening constant"
                              f" (default {DEFAULT_RRF_K})")
    p_query.add_argument("--deadline-ms", default=None, type=int, metavar="MS",
                         help="with --all/--glob: bound each fan-out to"
                              " this wall-clock budget (error when blown"
                              " unless --allow-partial)")
    p_query.add_argument("--allow-partial", action="store_true",
                         help="with --deadline-ms: print whatever"
                              " finished, marking omitted documents,"
                              " instead of erroring on a blown budget")
    p_query.add_argument("--batch", action="store_true",
                         help="evaluate all queries as one batch (shared"
                              " event-probability cache, bulk pricing)")
    p_query.add_argument("--queries-file", default=None,
                         help="file with one XPath per line ('#' comments)")
    p_query.add_argument("--no-cache", action="store_true",
                         help="disable the per-document probability cache")
    p_query.add_argument("--cache-stats", action="store_true",
                         help="print cache counters to stderr")
    p_query.add_argument("--aggregate", metavar="KIND", default=None,
                         choices=("count", "sum", "min", "max", "exists"),
                         help="treat each query as an aggregate target"
                              " (//tag) and print its exact distribution")
    p_query.add_argument("--text", default=None, metavar="VALUE",
                         help="with --aggregate: only elements whose leaf"
                              " text equals VALUE count as matches")
    p_query.set_defaults(handler=_cmd_query)

    p_stats = sub.add_parser("stats", help="uncertainty statistics of a .pxml file")
    p_stats.add_argument("document")
    p_stats.set_defaults(handler=_cmd_stats)

    p_worlds = sub.add_parser("worlds", help="enumerate possible worlds")
    p_worlds.add_argument("document")
    p_worlds.add_argument("--limit", type=int, default=20)
    p_worlds.set_defaults(handler=_cmd_worlds)

    p_fb = sub.add_parser("feedback", help="condition on answer feedback")
    p_fb.add_argument("document")
    p_fb.add_argument("xpath")
    p_fb.add_argument("value")
    truth = p_fb.add_mutually_exclusive_group(required=True)
    truth.add_argument("--correct", action="store_true", dest="correct")
    truth.add_argument("--incorrect", action="store_false", dest="correct")
    p_fb.add_argument("-o", "--output", default=None,
                      help="output file (default: overwrite input)")
    p_fb.set_defaults(handler=_cmd_feedback)

    p_serve = sub.add_parser(
        "serve",
        help="run the dataspace service over a store directory"
             " (commands from --exec or stdin)",
    )
    p_serve.add_argument("directory", help="document store directory")
    p_serve.add_argument("--cache-dir", default=None,
                         help="persistent answer-cache directory (answers"
                              " survive restarts; omit for in-memory only)")
    p_serve.add_argument("--max-cached", type=int, default=None,
                         help="LRU bound on materialized documents")
    p_serve.add_argument("--cache-max-rows", type=int, default=None,
                         help="row bound on the persistent answer cache"
                              " (least-recently-hit rows evicted beyond it)")
    p_serve.add_argument("--http", metavar="HOST:PORT", default=None,
                         help="serve the JSON API over HTTP on this address"
                              " (PORT 0 binds an ephemeral port; see"
                              " docs/http_api.md)")
    p_serve.add_argument("--workers", type=int, default=None,
                         help="pre-fork N worker processes behind a"
                              " consistent-hash sharding router"
                              " (requires --http; see docs/http_api.md)")
    p_serve.add_argument("--max-pending", type=int, default=None,
                         help="shed requests with 503 beyond this many"
                              " already in flight (default: unbounded)")
    p_serve.add_argument("--slow-ms", type=int, default=500,
                         help="log requests slower than this many"
                              " milliseconds to the GET /stats slow-query"
                              " ring (0 disables; default 500)")
    p_serve.add_argument("--exec", dest="commands", action="append",
                         metavar="CMD", default=None,
                         help="run one service command and continue"
                              " (repeatable; disables the stdin loop)")
    p_serve.add_argument("--cache-stats", action="store_true",
                         help="print cache counters to stderr on exit"
                              " (same counters GET /stats serves)")
    p_serve.set_defaults(handler=_cmd_serve)

    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI entry point; returns the process exit status."""
    parser = build_parser()
    # parse_known_args so `query doc --batch //a //b` works: argparse
    # refuses positionals after an optional when the positional list was
    # already (greedily, possibly emptily) matched; fold the leftovers
    # back into the query list for the one command where that's meaningful.
    args, extra = parser.parse_known_args(argv)
    if extra:
        if getattr(args, "command", None) == "query" and all(
            not token.startswith("-") for token in extra
        ):
            args.xpath = list(args.xpath) + extra
        else:
            parser.error(f"unrecognized arguments: {' '.join(extra)}")
    try:
        return args.handler(args)
    except (ImpreciseError, OSError) as error:
        print(f"error: {error}", file=sys.stderr)
        return 1


if __name__ == "__main__":
    sys.exit(main())
