"""IMPrECISE reproduction: good-is-good-enough probabilistic XML data
integration (de Keijzer & van Keulen, ICDE 2008).

The library integrates XML sources *near-automatically*: instead of
resolving every matching doubt up front, it represents all remaining
possible worlds compactly in one probabilistic XML tree, answers queries
with probability-ranked results, and refines the integration through user
feedback.

Quickstart (the paper's Figure 2)::

    from repro import integrate, ProbQueryEngine
    from repro.core.rules import DeepEqualRule, LeafValueRule
    from repro.data import addressbook_documents, ADDRESSBOOK_DTD

    book_a, book_b = addressbook_documents()
    result = integrate(book_a, book_b,
                       rules=[DeepEqualRule(), LeafValueRule()],
                       dtd=ADDRESSBOOK_DTD)
    answer = ProbQueryEngine(result.document).query("//person/tel")
    print(answer.as_table())

Packages: :mod:`repro.xmlkit` (XML substrate), :mod:`repro.pxml`
(probabilistic XML model), :mod:`repro.core` (integration engine — the
paper's contribution), :mod:`repro.query` (ranked querying),
:mod:`repro.feedback` (posterior conditioning), :mod:`repro.dbms`
(document store / module façade), :mod:`repro.data` (experiment data),
:mod:`repro.experiments` (calibrated paper workloads).
"""

from .errors import (
    ExplosionError,
    FeedbackError,
    ImpreciseError,
    IntegrationConflict,
    IntegrationError,
    MissingDocumentError,
    ModelError,
    ProbabilityError,
    QueryError,
    StoreError,
    WireFormatError,
    XMLParseError,
    XPathSyntaxError,
)
from .xmlkit import (
    DTD,
    XDocument,
    XElement,
    XPath,
    XText,
    deep_equal,
    parse_document,
    parse_dtd,
    serialize,
    serialize_pretty,
)
from .pxml import (
    PXDocument,
    certain_document,
    distinct_worlds,
    iter_worlds,
    node_count,
    parse_pxml,
    pxml_to_text,
    tree_stats,
    world_count,
)
from .core import (
    IntegrationConfig,
    IntegrationReport,
    IntegrationResult,
    Integrator,
    Oracle,
    estimate_integration,
    integrate,
)
from .pxml import EventProbabilityCache, cache_for
from .query import (
    AggregateSpec,
    FusedAnswer,
    ProbQueryEngine,
    QueryEngine,
    QueryPlan,
    RankedAnswer,
    aggregate_distribution,
    answer_quality,
    compile_aggregate,
    compile_plan,
    count_distribution,
    fuse_answers,
    query_enumeration,
)
from .feedback import FeedbackSession
from .dbms import (
    AnswerCacheStore,
    DataspaceService,
    DocumentStore,
    ImpreciseModule,
    document_digest,
)
# The HTTP front (repro.server) re-exports lazily via __getattr__ below:
# an eager import would load asyncio/http.client/the thread-pool stack
# into every `import repro`, including CLI runs that never serve HTTP.
_SERVER_EXPORTS = ("DataspaceClient", "ServerApp", "ServerError")


def __getattr__(name: str):
    if name in _SERVER_EXPORTS:
        from . import server

        return getattr(server, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")

__version__ = "1.0.0"

__all__ = [
    # errors
    "ImpreciseError",
    "XMLParseError",
    "XPathSyntaxError",
    "ModelError",
    "ProbabilityError",
    "IntegrationError",
    "IntegrationConflict",
    "ExplosionError",
    "QueryError",
    "FeedbackError",
    "StoreError",
    "MissingDocumentError",
    "WireFormatError",
    # xmlkit
    "XDocument",
    "XElement",
    "XText",
    "XPath",
    "DTD",
    "parse_document",
    "parse_dtd",
    "serialize",
    "serialize_pretty",
    "deep_equal",
    # pxml
    "PXDocument",
    "certain_document",
    "iter_worlds",
    "distinct_worlds",
    "world_count",
    "node_count",
    "tree_stats",
    "parse_pxml",
    "pxml_to_text",
    # core
    "integrate",
    "Integrator",
    "IntegrationConfig",
    "IntegrationResult",
    "IntegrationReport",
    "Oracle",
    "estimate_integration",
    # query / feedback / dbms
    "ProbQueryEngine",
    "QueryEngine",
    "QueryPlan",
    "compile_plan",
    "AggregateSpec",
    "compile_aggregate",
    "aggregate_distribution",
    "count_distribution",
    "EventProbabilityCache",
    "cache_for",
    "RankedAnswer",
    "FusedAnswer",
    "fuse_answers",
    "query_enumeration",
    "answer_quality",
    "FeedbackSession",
    "AnswerCacheStore",
    "DataspaceService",
    "DocumentStore",
    "ImpreciseModule",
    "document_digest",
    # server
    "DataspaceClient",
    "ServerApp",
    "ServerError",
    "__version__",
]
