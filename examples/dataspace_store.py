#!/usr/bin/env python3
"""The Figure 4 architecture as an application would use it.

`ImpreciseModule` plays the role of the original XQuery module on top of
MonetDB/XQuery: a document store underneath, probabilistic integration
and querying on top — plus the FLWOR layer for XQuery-style access.
Documents persist to disk, so the integration survives restarts
(a miniature dataspace, in the DSSP sense the paper aligns itself with).

Run:  python examples/dataspace_store.py
"""

import tempfile
from pathlib import Path

from repro.data.imdb import MOVIE_DTD, imdb_document
from repro.data.movies import sequels_six_imdb, confusing_mpeg7_six
from repro.data.mpeg7 import mpeg7_document
from repro.dbms.module import ImpreciseModule
from repro.dbms.service import DataspaceService
from repro.dbms.store import DocumentStore
from repro.dbms.xq import evaluate_flwor_ranked
from repro.experiments import standard_rules
from repro.xmlkit.serializer import serialize


def main() -> None:
    directory = Path(tempfile.mkdtemp(prefix="imprecise-store-"))
    print(f"store directory: {directory}")

    # Load the two sources into the store.
    module = ImpreciseModule(DocumentStore(directory))
    module.load_document("mpeg7", mpeg7_document(confusing_mpeg7_six()))
    module.load_document("imdb", imdb_document(sequels_six_imdb()))
    print("documents:", module.store.list())

    # Integrate with the full rule set; the result is stored as .pxml.
    report = module.integrate(
        "mpeg7", "imdb", "movies",
        rules=standard_rules("genre", "title", "year"),
        dtd=MOVIE_DTD,
    )
    print("\nintegration:", report.summary())

    # XPath querying with ranked answers.
    print("\nall titles (XPath):")
    print(module.query("movies", "//movie/title").as_table())

    # FLWOR-style access over the same probabilistic document.
    print("\n1975 movies (FLWOR over possible worlds):")
    answer = evaluate_flwor_ranked(
        module.probabilistic("movies"),
        'for $m in //movie where $m/year = "1975"'
        " order by $m/title return $m/title",
    )
    print(answer.as_table())

    # Feedback persists: a fresh module over the same directory sees it.
    module.feedback("movies", "//movie/title", "Jaws", correct=True)
    reopened = ImpreciseModule(DocumentStore(directory))
    print("\nafter feedback (reopened store):")
    print(f"  worlds: {reopened.stats('movies').world_count:,}")
    print("  files:", sorted(p.name for p in directory.iterdir()))

    # The serving layer on top: DataspaceService adds a persistent
    # answer cache, so a *restarted* process re-serves priced answers
    # without re-walking a single tree — identical Fractions.
    cache_dir = directory / "cache"
    with DataspaceService(directory=directory, cache_dir=cache_dir) as service:
        cold = service.query("movies", "//movie/title")
        print("\nservice (cold — evaluated and persisted):")
        print(cold.as_table())

    with DataspaceService(directory=directory, cache_dir=cache_dir) as service:
        warm = service.query("movies", "//movie/title")
        stats = service.cache_stats()
        print(f"\nservice restarted (warm): {stats['persistent_hits']}"
              f" persistent hit(s), {stats['engines']} engine(s) built")
        assert [(i.value, i.probability) for i in warm] == [
            (i.value, i.probability) for i in cold
        ]


if __name__ == "__main__":
    main()
