#!/usr/bin/env python3
"""Quickstart: the paper's Figure 2 in eight steps.

Two address books both contain a person named John — with different phone
numbers.  Are they the same person?  IMPrECISE refuses to guess: it keeps
*all three* possible worlds, answers queries with ranked probabilities,
and lets user feedback settle the matter later.

Run:  python examples/quickstart.py
"""

from repro import ProbQueryEngine, integrate, serialize
from repro.core.rules import DeepEqualRule, LeafValueRule
from repro.data import ADDRESSBOOK_DTD, addressbook_documents
from repro.feedback import FeedbackSession
from repro.probability import format_percent
from repro.pxml import iter_worlds, tree_stats


def main() -> None:
    # 1. Two sources that disagree.
    book_a, book_b = addressbook_documents()
    print("source a:", serialize(book_a))
    print("source b:", serialize(book_b))

    # 2. Integrate with only *generic* knowledge: deep-equal elements are
    #    the same object, equal/different leaf values match/don't.  The
    #    DTD adds one domain fact: a person has exactly one phone number.
    result = integrate(
        book_a,
        book_b,
        rules=[DeepEqualRule(), LeafValueRule()],
        dtd=ADDRESSBOOK_DTD,
    )
    print("\nintegration:", result.report.summary())

    # 3. The probabilistic document stores every possible world compactly.
    print("\npossible worlds (Figure 2 promises exactly three):")
    for world in iter_worlds(result.document):
        print(f"  {format_percent(world.probability, digits=1):>6}"
              f"  {serialize(world.document)}")

    # 4. Querying never needed the conflict resolved.
    engine = ProbQueryEngine(result.document)
    print("\n//person/tel →")
    print(engine.query("//person/tel").as_table())

    # 5. The paper-style predicate query.
    print('\n//person[nm="John"]/tel →')
    print(engine.query('//person[nm="John"]/tel').as_table())

    # 6. Uncertainty metrics — the paper's scalability measure is nodes.
    stats = tree_stats(result.document)
    print(f"\nstats: {stats.summary()}")

    # 7. A user confirms that 1111 really is one of John's numbers …
    session = FeedbackSession(result.document)
    step = session.confirm("//person/tel", "1111")
    print(f"\nafter confirming 1111 (prior {format_percent(step.prior)}):"
          f" worlds {step.worlds_before} → {step.worlds_after}")

    # 8. … and the ranking sharpens (exact Bayesian conditioning).
    print(session.ranked("//person/tel").as_table())


if __name__ == "__main__":
    main()
