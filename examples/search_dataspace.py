"""Dataspace-wide search end to end: fan-out, rank fusion, HTTP.

A dataspace holds many documents — source books, integrated merges —
and a question like "what is this person's phone number?" should not
require naming one of them.  This walkthrough builds a small dataspace
(two pairs of conflicting address books plus their uncertain merges)
and searches it three ways, all Fraction-identical:

1. in-process via :meth:`~repro.dbms.service.DataspaceService.query_all`,
   which compiles the plan once, prices every document through the
   persistent answer cache, and fuses the per-document rankings —
   exact probability-weighted fusion and exact-rational reciprocal
   rank fusion (RRF);
2. from a *restarted* service, where the whole fan-out is served from
   the persisted per-document rows (no engine, no tree walk);
3. over HTTP via ``POST /search``, where every score, weight and
   provenance probability crosses the wire as an exact ``"num/den"``
   string and each fused value keeps its ``document#rank`` sources.

Run:  PYTHONPATH=src python examples/search_dataspace.py
"""

import tempfile
from pathlib import Path

from repro import DataspaceClient, DataspaceService
from repro.core.rules import DeepEqualRule, LeafValueRule
from repro.data.addressbook import ADDRESSBOOK_DTD, addressbook_documents


def build_dataspace(service: DataspaceService) -> None:
    """Two pairs of conflicting source books and their merges."""
    rules = [DeepEqualRule(), LeafValueRule()]
    for pair, (prefix_a, prefix_b) in enumerate([("1", "2"), ("3", "4")]):
        entries_a = [("John", f"{prefix_a}111"), ("Mary", f"{prefix_a}999")]
        entries_b = [("John", f"{prefix_b}111"), ("Mary", f"{prefix_b}999")]
        book_a, book_b = addressbook_documents(entries_a, entries_b)
        service.load_document(f"src{pair}a", book_a)
        service.load_document(f"src{pair}b", book_b)
        service.integrate(
            f"src{pair}a", f"src{pair}b", f"merged{pair}",
            rules=rules, dtd=ADDRESSBOOK_DTD,
        )


def main() -> None:
    workdir = Path(tempfile.mkdtemp(prefix="imprecise-search-"))
    store_dir, cache_dir = workdir / "store", workdir / "cache"

    # -- 1. fan out and fuse in-process ------------------------------------
    with DataspaceService(directory=store_dir, cache_dir=cache_dir) as service:
        build_dataspace(service)
        print(f"dataspace: {service.store.list()}\n")

        print("John's phone, probability-weighted over ALL documents:")
        fused = service.query_all('//person[nm="John"]/tel')
        print(fused.as_table())

        print("\nsame question, exact-rational RRF over the merges only:")
        rrf = service.query_all(
            '//person[nm="John"]/tel', glob="merged*", strategy="rrf", rrf_k=10
        )
        print(rrf.as_table())

        print("\ntrusting merged0 three times as much (weights renormalize):")
        weighted = service.query_all(
            '//person[nm="John"]/tel', glob="merged*",
            weights={"merged0": 3},
        )
        print(weighted.as_table())

    # -- 2. restart: the whole fan-out served from persisted rows ----------
    with DataspaceService(directory=store_dir, cache_dir=cache_dir) as warm:
        again = warm.query_all('//person[nm="John"]/tel')
        stats = warm.cache_stats()
        assert again == fused
        assert stats["persistent_hits"] == len(fused.documents)
        assert stats["engines"] == 0  # straight from disk, no tree walk
        print("\nwarm restart fused the identical answer from disk ✓")

        # -- 3. the same search over HTTP ----------------------------------
        from repro.server.app import ServerApp
        from repro.server.http import BackgroundServer

        app = ServerApp(warm)
        with BackgroundServer(app) as background:
            with DataspaceClient(
                background.server.host, background.server.port
            ) as client:
                over_http = client.search('//person[nm="John"]/tel')
                assert over_http == fused
                print("POST /search round-tripped exactly ✓")
                top = over_http.items[0]
                sources = ", ".join(str(source) for source in top.sources)
                print(f"top answer over HTTP: {top.value} [{sources}]")
        app.close()


if __name__ == "__main__":
    main()
