#!/usr/bin/env python3
"""The dataspace service as a network citizen: HTTP quickstart.

Launches ``imprecise serve --http`` as a real subprocess, drives it with
the blocking :class:`~repro.server.client.DataspaceClient` (load two
conflicting address books, integrate, query, give feedback), then
**restarts the server process** over the same ``--cache-dir`` and shows
the second process serving the identical exact-Fraction answers straight
from the persistent answer cache — hits > 0, no engine ever built.

This is the zero-to-warm path the CI http-smoke job replays.

Run:  PYTHONPATH=src python examples/http_dataspace.py
"""

import os
import signal
import subprocess
import sys
import tempfile
from pathlib import Path

import repro
from repro.data.addressbook import addressbook_documents
from repro.server.client import DataspaceClient
from repro.xmlkit.serializer import serialize

SRC = str(Path(repro.__file__).resolve().parent.parent)

QUERIES = ["//person/tel", "//person/nm"]


def start_server(store: Path, cache: Path) -> subprocess.Popen:
    """An `imprecise serve --http` subprocess on an ephemeral port."""
    env = dict(os.environ)
    env["PYTHONPATH"] = SRC + os.pathsep + env.get("PYTHONPATH", "")
    proc = subprocess.Popen(
        [
            sys.executable, "-m", "repro", "serve", str(store),
            "--cache-dir", str(cache), "--http", "127.0.0.1:0",
        ],
        stdout=subprocess.PIPE,
        text=True,
        env=env,
    )
    line = proc.stdout.readline().strip()   # "serving on http://HOST:PORT"
    proc.port = int(line.rsplit(":", 1)[1])
    print(f"  {line} (pid {proc.pid})")
    return proc


def stop_server(proc: subprocess.Popen) -> None:
    proc.send_signal(signal.SIGTERM)        # graceful: drains in-flight work
    proc.communicate(timeout=30)


def main() -> None:
    workdir = Path(tempfile.mkdtemp(prefix="imprecise-http-"))
    store, cache = workdir / "store", workdir / "cache"
    book_a, book_b = addressbook_documents()

    print("== first server process: integrate and price the workload")
    proc = start_server(store, cache)
    try:
        with DataspaceClient("127.0.0.1", proc.port) as client:
            client.load("a", serialize(book_a))
            client.load("b", serialize(book_b))
            report = client.integrate("a", "b", "ab")
            print(f"  integrated: {report['summary']}")
            step = client.feedback("ab", "//person/tel", "1111")
            print(f"  feedback: confirmed '1111' (prior {step['prior']})")
            # Price the workload over the conditioned document; these
            # answers land in the persistent cache.
            cold = {}
            for query in QUERIES:
                answer = client.query("ab", query)
                cold[query] = [(i.value, i.probability) for i in answer]
                print(f"  {query}\n" + "\n".join(
                    f"    {line}" for line in answer.as_table().splitlines()))
    finally:
        stop_server(proc)

    print("== second server process, same --cache-dir: served from disk")
    proc = start_server(store, cache)
    try:
        with DataspaceClient("127.0.0.1", proc.port) as client:
            warm = {
                query: [(i.value, i.probability) for i in client.query("ab", query)]
                for query in QUERIES
            }
            stats = client.stats()
    finally:
        stop_server(proc)

    assert warm == cold, "warm answers must be Fraction-identical"
    assert stats["persistent_hits"] > 0, "second process must hit the cache"
    assert stats["engines"] == 0, "a pure-hit restart builds no engine"
    print(f"  persistent hits: {stats['persistent_hits']}"
          f" (engines built: {stats['engines']})")
    print("  warm answers Fraction-identical to the first process: OK")


if __name__ == "__main__":
    main()
