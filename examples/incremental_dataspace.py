#!/usr/bin/env python3
"""Sources arriving over time: the dataspace workflow (§I).

The paper's information cycle never ends: integrate, query, get feedback,
integrate the *next* source into the still-uncertain result.  This
example folds three phone-book snapshots into one probabilistic document,
watches uncertainty grow with each conflicting source and shrink with
feedback, and tracks the entropy of the distribution along the way.

Run:  python examples/incremental_dataspace.py
"""

from repro.core.engine import IntegrationConfig
from repro.core.incremental import IncrementalIntegrator
from repro.core.oracle import Oracle
from repro.core.rules import DeepEqualRule, KeyFieldRule, LeafValueRule
from repro.data.addressbook import ADDRESSBOOK_DTD
from repro.feedback import FeedbackSession
from repro.pxml.measures import uncertainty_profile
from repro.query.engine import ProbQueryEngine
from repro.xmlkit.parser import parse_document


def book(*entries: tuple[str, str]):
    persons = "".join(
        f"<person><nm>{name}</nm><tel>{tel}</tel></person>" for name, tel in entries
    )
    return parse_document(f"<addressbook>{persons}</addressbook>")


SOURCES = [
    ("old backup", book(("John", "1111"), ("Ann", "5550"))),
    ("phone export", book(("John", "2222"), ("Ann", "5550"))),
    ("paper notebook", book(("John", "1111"), ("Bea", "7777"))),
]


def main() -> None:
    # Domain knowledge for this dataspace: names are reliable keys —
    # same name ⇒ same person, different name ⇒ different people.
    # Remove the KeyFieldRule to watch cross-person ambiguity appear.
    config = IntegrationConfig(
        oracle=Oracle([
            DeepEqualRule(),
            KeyFieldRule("person", "nm"),
            LeafValueRule(),
        ]),
        dtd=ADDRESSBOOK_DTD,
    )
    integrator = IncrementalIntegrator(config=config, world_budget=256)

    for label, source in SOURCES:
        report = integrator.add_source(source)
        profile = uncertainty_profile(integrator.document)
        print(f"+ {label:15s} → {report.summary()}")
        print(f"  uncertainty: {profile.summary()}")

    document = integrator.document
    engine = ProbQueryEngine(document)
    print("\nJohn's number after all three sources:")
    print(engine.query('//person[nm="John"]/tel').as_table())

    # Ann's record was identical in both sources that mention her:
    print("\nAnn's number (never conflicted):")
    print(engine.query('//person[nm="Ann"]/tel').as_table())

    # The user settles John's number; the dataspace sharpens.
    session = FeedbackSession(document)
    session.confirm('//person[nm="John"]/tel', "1111")
    session.reject('//person[nm="John"]/tel', "2222")
    print("\nafter feedback (1111 confirmed, 2222 rejected):")
    print(session.ranked('//person[nm="John"]/tel').as_table())
    print("uncertainty:", uncertainty_profile(session.document).summary())


if __name__ == "__main__":
    main()
