"""Aggregate distributions end to end: convolution, persistence, HTTP.

An aggregate over an uncertain document is a *distribution*, not a
number.  This walkthrough integrates two conflicting address books and
then asks aggregate questions the ranked-answer API cannot express —
"how many people are there?", "what do the phone numbers sum to?" —
three ways, all Fraction-identical:

1. in-process, by exact bottom-up convolution
   (:func:`repro.query.aggregates.aggregate_distribution`), checked
   against the per-world reference;
2. through a persistent :class:`~repro.dbms.service.DataspaceService`,
   where the distribution survives a restart as an on-disk aggregate
   row (served warm with no engine, no tree walk);
3. over HTTP via ``POST /aggregate``, where every value and probability
   crosses the wire as an exact ``"num/den"`` string.

Run:  PYTHONPATH=src python examples/aggregate_distributions.py
"""

import tempfile
from pathlib import Path

from repro import DataspaceClient, DataspaceService
from repro.core.rules import DeepEqualRule, LeafValueRule
from repro.data.addressbook import ADDRESSBOOK_DTD, addressbook_documents
from repro.query.aggregates import (
    aggregate_distribution,
    aggregate_distribution_enumerated,
    exists_probability,
    expected_value,
    format_distribution,
)
from repro.server.app import ServerApp
from repro.server.http import BackgroundServer


def main() -> None:
    workdir = Path(tempfile.mkdtemp(prefix="imprecise-aggregates-"))
    store_dir, cache_dir = workdir / "store", workdir / "cache"

    # -- 1. integrate, then aggregate in-process ---------------------------
    with DataspaceService(directory=store_dir, cache_dir=cache_dir) as service:
        book_a, book_b = addressbook_documents()
        service.load_document("a", book_a)
        service.load_document("b", book_b)
        service.integrate(
            "a", "b", "ab",
            rules=[DeepEqualRule(), LeafValueRule()], dtd=ADDRESSBOOK_DTD,
        )
        document = service._module.probabilistic("ab")

        print("count(//person) — is John one person or two?")
        counts = service.aggregate("ab", "count", "person")
        print(format_distribution(counts))
        print(f"expected count: {expected_value(counts)}")

        print("\nsum(//tel) — conflicting numbers, conflicting sums:")
        sums = service.aggregate("ab", "sum", "tel")
        print(format_distribution(sums))

        print("\nmin(//tel) and P(any tel exists):")
        print(format_distribution(service.aggregate("ab", "min", "tel")))
        print(f"exists: {exists_probability(document, 'tel')}")

        # The convolution agrees with the per-world definition, exactly.
        for kind in ("count", "sum", "min", "max", "exists"):
            pushed = aggregate_distribution(document, kind, "tel")
            enumerated = aggregate_distribution_enumerated(document, kind, "tel")
            assert pushed == enumerated, (kind, pushed, enumerated)
        print("\nall five kinds Fraction-identical to world enumeration ✓")

    # -- 2. restart: served from the persisted aggregate rows --------------
    with DataspaceService(directory=store_dir, cache_dir=cache_dir) as warm:
        warm_counts = warm.aggregate("ab", "count", "person")
        stats = warm.cache_stats()
        assert warm_counts == counts
        assert stats["persistent_aggregate_hits"] == 1
        assert stats["engines"] == 0  # straight from disk, no tree walk
        print("warm restart served the identical distribution from disk ✓")

        # -- 3. the same distribution over HTTP ----------------------------
        app = ServerApp(warm)
        with BackgroundServer(app) as background:
            with DataspaceClient(
                background.server.host, background.server.port
            ) as client:
                over_http = client.aggregate("ab", "count", "person")
                assert over_http == counts
                filtered = client.aggregate("ab", "count", "nm", text="John")
                print("POST /aggregate round-tripped exactly ✓")
                print(f"count(//nm = 'John') over HTTP: {filtered}")
        app.close()


if __name__ == "__main__":
    main()
