#!/usr/bin/env python3
"""The §V experiments: how a few simple rules tame data explosion.

Reproduces the paper's Table I sweep — integrating the sequels-six
workload (2 Jaws + 2 Die Hard + 2 Mission: Impossible per source) under
growing rule sets — and the §V typical-conditions run (6 vs 60 movies,
exactly two undecided pairs, four worlds).

Run:  python examples/movie_integration.py
"""

from repro.core.engine import Integrator
from repro.core.estimate import estimate_integration
from repro.experiments import (
    TABLE1_PAPER_NODES_X1000,
    TABLE1_ROWS,
    run_typical,
    table1_config,
    table1_sources,
)
from repro.pxml.worlds import distinct_worlds
from repro.xmlkit.serializer import serialize_pretty


def table1() -> None:
    print("=== Table I: effect of rules on uncertainty ===")
    print(f"{'rule set':38s} {'paper':>12s} {'measured':>12s} {'matchings':>10s}")
    source_a, source_b = table1_sources()
    for (label, names), paper in zip(TABLE1_ROWS, TABLE1_PAPER_NODES_X1000):
        estimate = estimate_integration(source_a, source_b, table1_config(names))
        print(
            f"{label:38s} {paper * 1000:>12,} {estimate.total_nodes:>12,}"
            f" {estimate.possibility_count:>10,}"
        )
    print(
        "\nWith no domain rules every movie might match every other movie"
        " (13,327 joint matchings for 6 vs 6); three one-line rules cut the"
        " representation by three orders of magnitude."
    )


def typical() -> None:
    print("\n=== §V typical conditions: 6 vs 60 movies ===")
    result = run_typical()
    print("report:", result.report.summary())
    print("\nThe four possible worlds differ only in whether the two shared")
    print("movies merged; everything else was decided automatically:")
    for index, (_, probability) in enumerate(distinct_worlds(result.document), 1):
        print(f"  world {index}: probability {probability}")
    # Show a fragment of the probabilistic document: the Braveheart choice.
    from repro.pxml.serialize import pxml_to_xml
    from repro.xmlkit.xpath import XPath
    encoded = pxml_to_xml(result.document)
    choices = [
        node
        for node in XPath("//p:prob").select(encoded)
        if len(node.child_elements("p:poss")) > 1
    ]
    print(f"\none of the {len(choices)} remaining choice points:")
    print(serialize_pretty(choices[0])[:1500])


if __name__ == "__main__":
    table1()
    typical()
