#!/usr/bin/env python3
"""§VI: querying a database that is still uncertain.

Builds the confusing movie integration behind the paper's two example
queries and shows that "even in the presence of much uncertainty, a
probabilistic database can still be queried effectively": the ranked
answers are immediately usable, wrong candidates surface with low
probability, and quality measures quantify it.

Run:  python examples/probabilistic_querying.py
"""

from repro.experiments import QUERY_HORROR, QUERY_JOHN, section6_document
from repro.pxml.stats import tree_stats
from repro.query.engine import ProbQueryEngine
from repro.query.quality import answer_quality, precision_recall_at


def main() -> None:
    result = section6_document()
    stats = tree_stats(result.document)
    print(
        f"integrated document: {stats.total:,} nodes,"
        f" {stats.world_count:,} possible worlds,"
        f" {stats.choice_points} choice points"
    )

    engine = ProbQueryEngine(result.document)

    print(f"\nquery 1: {QUERY_HORROR}")
    horror = engine.query(QUERY_HORROR)
    print(horror.as_table())
    print(
        "→ the only two Horror movies, ranked just below 100% — the"
        " missing mass lives in worlds where a Jaws record merged into a"
        " sibling sequel and lost its title."
    )

    print(f"\nquery 2: {QUERY_JOHN}")
    john = engine.query(QUERY_JOHN)
    print(john.as_table())
    print(
        "→ 'Mission: Impossible' is wrong (Brian De Palma directed it),"
        " but because the 'II' might be a typing mistake the system ranks"
        " it as possible — at a usefully low probability."
    )

    print("\nanswer quality (adapted precision/recall, paper ref [13]):")
    truth_horror = {"Jaws", "Jaws 2"}
    truth_john = {"Die Hard: With a Vengeance", "Mission: Impossible II"}
    for name, answer, truth in (
        ("horror", horror, truth_horror),
        ("john", john, truth_john),
    ):
        weighted = answer_quality(answer, truth)
        crisp = precision_recall_at(answer, truth, 0.5)
        print(f"  {name:7s} weighted: {weighted.summary()}")
        print(f"  {name:7s} crisp@0.5: {crisp.summary()}")


if __name__ == "__main__":
    main()
