#!/usr/bin/env python3
"""The dataspace as a serving tier: pre-fork multi-worker quickstart.

Launches ``imprecise serve --http --workers 4`` as a real subprocess —
one parent router plus four worker processes sharing one store and one
persistent answer cache — and drives it end to end:

* load eight documents and watch the consistent-hash router pin each
  name to one worker (shard affinity keeps that document's cache rows
  and materialization hot in a single process);
* query every document and verify, via the aggregated ``GET /stats``
  document, that the per-worker request counts land exactly where the
  ring predicted;
* integrate two documents through one worker and read the result back
  through *round-robin* ``/search`` fan-outs on the others — the shared
  cache plus the cross-process invalidation fence make every worker
  serve the same exact Fractions;
* shut the tier down with SIGTERM and watch it drain gracefully.

This is the tier the CI multiproc-smoke job replays.

Run:  PYTHONPATH=src python examples/multiproc_dataspace.py
"""

import os
import signal
import subprocess
import sys
import tempfile
from pathlib import Path

import repro
from repro.server.client import DataspaceClient
from repro.server.multiproc import ConsistentHashRing

SRC = str(Path(repro.__file__).resolve().parent.parent)

WORKERS = 4
DOCS = {f"src{i}": f"<r><x>{i}</x><x>{i + 1}</x><y>{i % 3}</y></r>"
        for i in range(8)}


def main() -> None:
    workdir = Path(tempfile.mkdtemp(prefix="imprecise-multiproc-"))
    store, cache = workdir / "store", workdir / "cache"
    store.mkdir()

    env = dict(os.environ)
    env["PYTHONPATH"] = SRC + os.pathsep + env.get("PYTHONPATH", "")
    print(f"== starting a {WORKERS}-worker tier ==")
    proc = subprocess.Popen(
        [
            sys.executable, "-m", "repro", "serve", str(store),
            "--cache-dir", str(cache),
            "--http", "127.0.0.1:0", "--workers", str(WORKERS),
        ],
        stdout=subprocess.PIPE,
        text=True,
        env=env,
    )
    banner = proc.stdout.readline().strip()   # "serving on http://HOST:PORT"
    port = int(banner.rsplit(":", 1)[1])
    print(f"  {banner} (router pid {proc.pid})")
    print(f"  {proc.stdout.readline().strip()}")

    client = DataspaceClient("127.0.0.1", port)
    try:
        print("\n== loading the corpus through the router ==")
        for name, xml in DOCS.items():
            client.load(name, xml)
        ring = ConsistentHashRing([f"worker-{i}" for i in range(WORKERS)])
        for name in sorted(DOCS):
            print(f"  {name} -> {ring.member_for(name)}")

        print("\n== querying every document ==")
        for name in sorted(DOCS):
            answer = client.query(name, "//x")
            print(f"  {name}: //x = {answer.values()}")

        print("\n== shard affinity, verified from GET /stats ==")
        stats = client.stats()
        expected = {key: 0 for key in ring.members}
        for name in DOCS:
            expected[ring.member_for(name)] += 1
        for entry in stats["workers"]:
            count = (entry["stats"]["http"]["endpoints"]
                     .get("POST /query", {}).get("count", 0))
            print(f"  {entry['worker']} served {count} queries"
                  f" (ring predicted {expected[entry['worker']]})")
            assert count == expected[entry["worker"]], "shard routing drifted"

        print("\n== cross-worker visibility ==")
        client.integrate("src0", "src1", "combined")
        answers = set()
        for _ in range(WORKERS):  # round-robin /search hits every worker
            fused = client.search("//x", documents=["combined"])
            answers.add(tuple(fused.values()))
        print(f"  /integrate via one worker, /search via all:"
              f" {len(answers)} distinct answer(s)")
        assert len(answers) == 1, "workers disagreed on the fused answer"

        routed = sum(
            entry["count"] for entry in stats["router"]["endpoints"].values()
        )
        print(f"\n== router metrics: {routed} requests routed,"
              f" {stats['router']['shed']} shed ==")
    finally:
        client.close()
        print("\n== SIGTERM: graceful drain ==")
        proc.send_signal(signal.SIGTERM)
        proc.communicate(timeout=60)
    assert proc.returncode == 0, f"tier exited {proc.returncode}"
    print(f"  tier exited {proc.returncode}")
    print("\nOK")


if __name__ == "__main__":
    main()
