#!/usr/bin/env python3
"""The §I information cycle: query → feedback → better integration.

The demo paper left the feedback mechanism unimplemented ("has not been
implemented, hence cannot be demonstrated yet"); this reproduction closes
the loop.  Every confirmation/rejection conditions the probabilistic
document exactly (Bayes over possible worlds), so uncertainty shrinks
monotonically while the integration keeps being used.

Run:  python examples/feedback_loop.py
"""

from repro.experiments import QUERY_HORROR, QUERY_JOHN, section6_document
from repro.feedback import FeedbackSession
from repro.probability import format_percent
from repro.pxml.stats import tree_stats


def show(session: FeedbackSession, label: str) -> None:
    stats = tree_stats(session.document)
    print(f"\n--- {label} ---")
    print(f"worlds: {stats.world_count:,}   nodes: {stats.total:,}")
    print("john query:")
    print(session.ranked(QUERY_JOHN).as_table())


def main() -> None:
    result = section6_document()
    session = FeedbackSession(result.document)
    show(session, "before any feedback")

    # The user knows Brian De Palma directed Mission: Impossible — the
    # 21%-style answer is wrong.  Reject it.
    step = session.reject(QUERY_JOHN, "Mission: Impossible")
    print(
        f"\nreject 'Mission: Impossible'"
        f" (prior {format_percent(step.prior)}):"
        f" worlds {step.worlds_before:,} → {step.worlds_after:,}"
    )
    show(session, "after rejecting the wrong answer")

    # Confirm a correct one: Jaws really is a Horror movie in the answer.
    step = session.confirm(QUERY_HORROR, "Jaws")
    print(
        f"\nconfirm 'Jaws' for the horror query"
        f" (prior {format_percent(step.prior)}):"
        f" worlds {step.worlds_before:,} → {step.worlds_after:,}"
    )
    show(session, "after confirming Jaws")

    print("\nfeedback history:")
    for step in session.history:
        print(
            f"  {step.kind:8s} {step.value!r}"
            f"  worlds {step.worlds_before:,}→{step.worlds_after:,}"
            f"  nodes {step.nodes_before:,}→{step.nodes_after:,}"
        )


if __name__ == "__main__":
    main()
